//! Axis-aligned bounding boxes and the slab ray/box intersection test.

use crate::{Ray, Vec3};

/// An axis-aligned bounding box described by its two extreme corners.
///
/// This is the bounding volume of the BVH (§2.4): interior nodes recursively
/// bound lower-level boxes with larger boxes, and `RayBoxTest` in Algorithm 1
/// is `Aabb::intersect`.
///
/// The empty box is represented with inverted infinite bounds so that
/// [`Aabb::union`] and [`Aabb::grow`] behave as identity on it.
///
/// # Examples
///
/// ```
/// use rip_math::{Aabb, Vec3};
///
/// let mut b = Aabb::empty();
/// b = b.grow(Vec3::ZERO).grow(Vec3::ONE);
/// assert_eq!(b.diagonal(), Vec3::ONE);
/// assert!((b.surface_area() - 6.0).abs() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

rip_pod::impl_pod!(Aabb, size = 24, align = 4);

impl Default for Aabb {
    fn default() -> Self {
        Aabb::empty()
    }
}

impl Aabb {
    /// Creates a box from two corners.
    ///
    /// The corners are sorted component-wise, so argument order does not
    /// matter.
    #[inline]
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// The empty box (identity for [`union`](Aabb::union)).
    #[inline]
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f32::INFINITY),
            max: Vec3::splat(f32::NEG_INFINITY),
        }
    }

    /// Whether this box contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Smallest box containing both operands.
    #[inline]
    pub fn union(&self, rhs: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(rhs.min),
            max: self.max.max(rhs.max),
        }
    }

    /// Smallest box containing this box and the point `p`.
    #[inline]
    pub fn grow(&self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Box center.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Extent along each axis (`max - min`).
    #[inline]
    pub fn diagonal(&self) -> Vec3 {
        self.max - self.min
    }

    /// Length of the diagonal. AO ray lengths are 25–40% of the *scene*
    /// bounding box diagonal (§5.2).
    #[inline]
    pub fn diagonal_length(&self) -> f32 {
        self.diagonal().length()
    }

    /// The largest extent over the three axes; `l` in the Two Point hash
    /// (§4.2.2).
    #[inline]
    pub fn max_extent(&self) -> f32 {
        self.diagonal().max_component()
    }

    /// Surface area, the quantity minimized by the SAH BVH builder.
    ///
    /// Returns `0.0` for empty boxes.
    #[inline]
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let d = self.diagonal();
        2.0 * (d.x * d.y + d.y * d.z + d.z * d.x)
    }

    /// Whether `p` lies inside the closed box.
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Whether `rhs` is fully contained in this box (every box contains the
    /// empty box).
    #[inline]
    pub fn contains_box(&self, rhs: &Aabb) -> bool {
        rhs.is_empty() || (self.contains_point(rhs.min) && self.contains_point(rhs.max))
    }

    /// Maps a point to `[0,1]³` relative to this box (clamped). This is the
    /// quantization used by the Grid Hash block (§4.2.1) and Morton sorting.
    #[inline]
    pub fn normalize_point(&self, p: Vec3) -> Vec3 {
        let d = self.diagonal();
        let safe = Vec3::new(d.x.max(1e-20), d.y.max(1e-20), d.z.max(1e-20));
        let q = (p - self.min) * safe.recip();
        q.max(Vec3::ZERO).min(Vec3::ONE)
    }

    /// Slab ray/box test against the ray's `[t_min, t_max]` interval.
    ///
    /// Returns the entry parameter (clamped to `ray.t_min`) on hit. Rays that
    /// start inside the box report `ray.t_min`. This is `RayBoxTest` of
    /// Algorithm 1.
    #[inline]
    pub fn intersect(&self, ray: &Ray) -> Option<f32> {
        self.intersect_with_inv(ray, ray.inv_direction())
    }

    /// Slab test with a precomputed reciprocal direction (the form used in
    /// inner traversal loops, where `inv_dir` is computed once per ray).
    ///
    /// The acceptance is deliberately *conservative* (cf. Ize, "Robust BVH
    /// Ray Traversal", 2013): rounding in the slab arithmetic can shrink
    /// the true interval by a few ulps, which would cull geometry lying
    /// exactly on a box face — hits the (authoritative) triangle test
    /// accepts. Padding the comparison guarantees every box containing a
    /// reportable hit passes; the only cost is an occasional extra node
    /// visit.
    #[inline]
    pub fn intersect_with_inv(&self, ray: &Ray, inv_dir: Vec3) -> Option<f32> {
        let t0 = (self.min - ray.origin) * inv_dir;
        let t1 = (self.max - ray.origin) * inv_dir;
        let t_near = t0.min(t1);
        let t_far = t0.max(t1);
        let t_enter = t_near.max_component().max(ray.t_min);
        let t_exit = t_far.min_component().min(ray.t_max);
        if t_enter <= t_exit * (1.0 + 1e-6) + 1e-7 {
            Some(t_enter)
        } else {
            None
        }
    }
}

impl FromIterator<Vec3> for Aabb {
    fn from_iter<I: IntoIterator<Item = Vec3>>(iter: I) -> Self {
        iter.into_iter().fold(Aabb::empty(), |b, p| b.grow(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::ZERO, Vec3::ONE)
    }

    #[test]
    fn new_sorts_corners() {
        let b = Aabb::new(Vec3::ONE, Vec3::ZERO);
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::ONE);
    }

    #[test]
    fn empty_behaves_as_identity() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.surface_area(), 0.0);
        let b = unit_box();
        assert_eq!(e.union(&b), b);
        assert_eq!(b.union(&e), b);
        assert!(b.contains_box(&e));
    }

    #[test]
    fn union_and_grow() {
        let b = Aabb::empty()
            .grow(Vec3::new(-1.0, 0.0, 0.0))
            .grow(Vec3::new(2.0, 3.0, 1.0));
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(2.0, 3.0, 1.0));
        assert_eq!(b.center(), Vec3::new(0.5, 1.5, 0.5));
    }

    #[test]
    fn surface_area_unit_cube() {
        assert!((unit_box().surface_area() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn containment() {
        let b = unit_box();
        assert!(b.contains_point(Vec3::splat(0.5)));
        assert!(b.contains_point(Vec3::ZERO)); // boundary closed
        assert!(!b.contains_point(Vec3::splat(1.1)));
        assert!(b.contains_box(&Aabb::new(Vec3::splat(0.2), Vec3::splat(0.8))));
        assert!(!b.contains_box(&Aabb::new(Vec3::splat(0.5), Vec3::splat(1.5))));
    }

    #[test]
    fn normalize_point_clamps() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        assert_eq!(b.normalize_point(Vec3::splat(1.0)), Vec3::splat(0.5));
        assert_eq!(b.normalize_point(Vec3::splat(-5.0)), Vec3::ZERO);
        assert_eq!(b.normalize_point(Vec3::splat(5.0)), Vec3::ONE);
    }

    #[test]
    fn ray_hits_box_frontally() {
        let r = Ray::new(Vec3::new(0.5, 0.5, -2.0), Vec3::Z);
        let t = unit_box().intersect(&r).unwrap();
        assert!((t - 2.0).abs() < 1e-5);
    }

    #[test]
    fn ray_misses_box() {
        let r = Ray::new(Vec3::new(2.0, 2.0, -2.0), Vec3::Z);
        assert_eq!(unit_box().intersect(&r), None);
    }

    #[test]
    fn ray_starting_inside_reports_t_min() {
        let r = Ray::new(Vec3::splat(0.5), Vec3::X);
        let t = unit_box().intersect(&r).unwrap();
        assert_eq!(t, r.t_min);
    }

    #[test]
    fn ray_behind_box_misses() {
        let r = Ray::new(Vec3::new(0.5, 0.5, 2.0), Vec3::Z);
        assert_eq!(unit_box().intersect(&r), None);
    }

    #[test]
    fn segment_too_short_misses() {
        let r = Ray::segment(Vec3::new(0.5, 0.5, -2.0), Vec3::Z, 1.0);
        assert_eq!(unit_box().intersect(&r), None);
        let r2 = Ray::segment(Vec3::new(0.5, 0.5, -2.0), Vec3::Z, 2.5);
        assert!(unit_box().intersect(&r2).is_some());
    }

    #[test]
    fn axis_parallel_ray_on_slab_boundary() {
        // Direction has a zero component; recip gives ±inf and the slab test
        // must still answer correctly.
        let r = Ray::new(Vec3::new(0.5, 0.5, 0.5), Vec3::X);
        assert!(unit_box().intersect(&r).is_some());
        let miss = Ray::new(Vec3::new(0.5, 2.0, 0.5), Vec3::X);
        assert_eq!(unit_box().intersect(&miss), None);
    }

    #[test]
    fn from_iterator_bounds_points() {
        let b: Aabb = [Vec3::ZERO, Vec3::ONE, Vec3::new(-1.0, 0.5, 2.0)]
            .into_iter()
            .collect();
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 2.0));
    }

    #[test]
    fn max_extent_and_diagonal() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 4.0, 2.0));
        assert_eq!(b.max_extent(), 4.0);
        assert!((b.diagonal_length() - (1.0f32 + 16.0 + 4.0).sqrt()).abs() < 1e-6);
    }
}
