//! Vector math and geometry primitives for the ray intersection predictor
//! reproduction.
//!
//! This crate is the lowest-level substrate of the workspace. It provides the
//! types every other crate builds on:
//!
//! * [`Vec3`] — a 3-component `f32` vector with the usual operator overloads.
//! * [`Ray`] — a semi-infinite line `o + t·d` with a `[t_min, t_max]` interval,
//!   exactly as characterized in §2.2 of the paper.
//! * [`Aabb`] — axis-aligned bounding box with the branchless slab
//!   intersection test used by BVH traversal.
//! * [`Triangle`] — Möller–Trumbore ray/triangle intersection.
//! * [`spherical`] — direction ↔ (θ, φ) conversions used by the
//!   Grid Spherical ray hash (§4.2.1).
//! * [`morton`] — 3-D Morton codes used by Aila–Laine-style ray sorting
//!   (§5.2).
//! * [`sampling`] — cosine-weighted hemisphere sampling used to generate
//!   ambient-occlusion rays (§2.3).
//!
//! # Examples
//!
//! ```
//! use rip_math::{Aabb, Ray, Vec3};
//!
//! let bbox = Aabb::new(Vec3::splat(0.0), Vec3::splat(1.0));
//! let ray = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::new(0.0, 0.0, 1.0));
//! assert!(bbox.intersect(&ray).is_some());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod aabb;
pub mod morton;
mod onb;
mod ray;
pub mod sampling;
pub mod spherical;
mod triangle;
mod vec3;

pub use aabb::Aabb;
pub use onb::Onb;
pub use ray::Ray;
pub use triangle::{Triangle, TriangleHit};
pub use vec3::Vec3;

/// A tolerance suitable for comparing accumulated `f32` geometry results.
pub const GEOM_EPS: f32 = 1e-4;

/// Computes the geometric mean of an iterator of positive values.
///
/// Returns `None` when the iterator is empty or any value is not
/// strictly positive. The paper reports its headline speedup as a geometric
/// mean over seven scenes (§6), so this helper lives in the base crate.
///
/// # Examples
///
/// ```
/// let gm = rip_math::geometric_mean([2.0, 8.0]).unwrap();
/// assert!((gm - 4.0).abs() < 1e-9);
/// ```
pub fn geometric_mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut log_sum = 0.0f64;
    let mut count = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        count += 1;
    }
    if count == 0 {
        None
    } else {
        Some((log_sum / count as f64).exp())
    }
}

/// Computes the Pearson correlation coefficient between two equal-length
/// samples.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// elements, or either sample has zero variance. Used by the Figure 11
/// correlation experiment.
///
/// # Examples
///
/// ```
/// let r = rip_math::pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.1]).unwrap();
/// assert!(r > 0.99);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basic() {
        assert!((geometric_mean([1.0, 1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((geometric_mean([4.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_empty_and_nonpositive() {
        assert_eq!(geometric_mean(std::iter::empty()), None);
        assert_eq!(geometric_mean([1.0, 0.0]), None);
        assert_eq!(geometric_mean([1.0, -2.0]), None);
        assert_eq!(geometric_mean([f64::NAN]), None);
    }

    #[test]
    fn pearson_perfect_anticorrelation() {
        let r = pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }
}
