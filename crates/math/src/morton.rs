//! 3-D Morton (Z-order) codes.
//!
//! The paper compares against Morton-order-sorted rays (the Aila–Laine
//! quicksort, §5.2): each ray is keyed by the interleaved bits of its
//! quantized origin (and direction). These helpers produce 30-bit and 60-bit
//! codes from `[0,1]³` coordinates.

use crate::Vec3;

/// Spreads the low 10 bits of `v` so that 2 zero bits separate each bit.
#[inline]
fn expand_bits_10(v: u32) -> u32 {
    let mut x = v & 0x3ff;
    x = (x | (x << 16)) & 0x030000ff;
    x = (x | (x << 8)) & 0x0300f00f;
    x = (x | (x << 4)) & 0x030c30c3;
    x = (x | (x << 2)) & 0x09249249;
    x
}

/// Spreads the low 20 bits of `v` for 60-bit codes.
#[inline]
fn expand_bits_20(v: u64) -> u64 {
    let mut x = v & 0xf_ffff;
    x = (x | (x << 32)) & 0x000f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x000f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x000f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x00c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x0249_2492_4924_9249;
    x
}

/// 30-bit Morton code of a point in `[0,1]³` (10 bits per axis).
///
/// Coordinates outside the unit cube are clamped.
///
/// # Examples
///
/// ```
/// use rip_math::{morton::morton3_30, Vec3};
///
/// assert_eq!(morton3_30(Vec3::ZERO), 0);
/// // Nearby points receive nearby codes far more often than distant ones.
/// let a = morton3_30(Vec3::splat(0.5));
/// let b = morton3_30(Vec3::splat(0.5001));
/// assert!(a.abs_diff(b) < morton3_30(Vec3::splat(0.9)).abs_diff(a));
/// ```
pub fn morton3_30(p: Vec3) -> u32 {
    let scale = 1024.0;
    let q = |v: f32| ((v.clamp(0.0, 1.0) * scale).min(1023.0) as u32).min(1023);
    (expand_bits_10(q(p.x)) << 2) | (expand_bits_10(q(p.y)) << 1) | expand_bits_10(q(p.z))
}

/// 60-bit Morton code of a point in `[0,1]³` (20 bits per axis), for large
/// scenes where 10 bits per axis aliases.
pub fn morton3_60(p: Vec3) -> u64 {
    let scale = (1u64 << 20) as f32;
    let q = |v: f32| ((v.clamp(0.0, 1.0) * scale).min(scale - 1.0) as u64).min((1 << 20) - 1);
    (expand_bits_20(q(p.x)) << 2) | (expand_bits_20(q(p.y)) << 1) | expand_bits_20(q(p.z))
}

/// Collapses every third bit back together — inverse of [`expand_bits_10`].
#[inline]
fn compact_bits_10(v: u32) -> u32 {
    let mut x = v & 0x09249249;
    x = (x | (x >> 2)) & 0x030c30c3;
    x = (x | (x >> 4)) & 0x0300f00f;
    x = (x | (x >> 8)) & 0x030000ff;
    x = (x | (x >> 16)) & 0x3ff;
    x
}

/// Collapses every third bit for 60-bit codes — inverse of
/// [`expand_bits_20`].
#[inline]
fn compact_bits_20(v: u64) -> u64 {
    let mut x = v & 0x0249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x00c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x000f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x000f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x000f_0000_0000_ffff;
    x = (x | (x >> 32)) & 0xf_ffff;
    x
}

/// Decodes a 30-bit Morton code back to its quantized `(x, y, z)` grid
/// cell (10 bits per axis).
///
/// Inverse of the interleaving in [`morton3_30`]: re-encoding the cell
/// center `(c + 0.5) / 1024` reproduces `code`. Bits above the low 30 are
/// ignored.
///
/// # Examples
///
/// ```
/// use rip_math::{morton::{morton3_30, morton3_30_decode}, Vec3};
///
/// let code = morton3_30(Vec3::new(0.3, 0.6, 0.9));
/// let (x, y, z) = morton3_30_decode(code);
/// let center = Vec3::new(x as f32 + 0.5, y as f32 + 0.5, z as f32 + 0.5) / 1024.0;
/// assert_eq!(morton3_30(center), code);
/// ```
pub fn morton3_30_decode(code: u32) -> (u32, u32, u32) {
    (
        compact_bits_10(code >> 2),
        compact_bits_10(code >> 1),
        compact_bits_10(code),
    )
}

/// Decodes a 60-bit Morton code back to its quantized `(x, y, z)` grid
/// cell (20 bits per axis). Inverse of [`morton3_60`]'s interleaving; bits
/// above the low 60 are ignored.
pub fn morton3_60_decode(code: u64) -> (u64, u64, u64) {
    (
        compact_bits_20(code >> 2),
        compact_bits_20(code >> 1),
        compact_bits_20(code),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_of_unit_cube() {
        assert_eq!(morton3_30(Vec3::ZERO), 0);
        // All 30 bits set for the far corner.
        assert_eq!(morton3_30(Vec3::ONE), (1 << 30) - 1);
        assert_eq!(morton3_60(Vec3::ONE), (1u64 << 60) - 1);
    }

    #[test]
    fn out_of_range_is_clamped() {
        assert_eq!(morton3_30(Vec3::splat(-3.0)), 0);
        assert_eq!(morton3_30(Vec3::splat(9.0)), (1 << 30) - 1);
    }

    #[test]
    fn axis_bits_interleave_in_xyz_order() {
        // x = 1 (lowest quantized bit) should land at bit position 2.
        let x_only = morton3_30(Vec3::new(1.0 / 1024.0, 0.0, 0.0));
        assert_eq!(x_only, 0b100);
        let y_only = morton3_30(Vec3::new(0.0, 1.0 / 1024.0, 0.0));
        assert_eq!(y_only, 0b010);
        let z_only = morton3_30(Vec3::new(0.0, 0.0, 1.0 / 1024.0));
        assert_eq!(z_only, 0b001);
    }

    #[test]
    fn monotone_along_diagonal() {
        let mut prev = 0u32;
        for i in 0..=16 {
            let code = morton3_30(Vec3::splat(i as f32 / 16.0));
            assert!(code >= prev, "diagonal codes must not decrease");
            prev = code;
        }
    }

    #[test]
    fn decode_inverts_encode_at_corners() {
        assert_eq!(morton3_30_decode(0), (0, 0, 0));
        assert_eq!(morton3_30_decode((1 << 30) - 1), (1023, 1023, 1023));
        assert_eq!(morton3_60_decode(0), (0, 0, 0));
        let top = (1u64 << 20) - 1;
        assert_eq!(morton3_60_decode((1u64 << 60) - 1), (top, top, top));
    }

    #[test]
    fn decode_unscrambles_single_axis_bits() {
        assert_eq!(morton3_30_decode(0b100), (1, 0, 0));
        assert_eq!(morton3_30_decode(0b010), (0, 1, 0));
        assert_eq!(morton3_30_decode(0b001), (0, 0, 1));
        assert_eq!(morton3_60_decode(0b100), (1, 0, 0));
    }

    #[test]
    fn every_30bit_code_round_trips_through_cells() {
        // Spot-check a spread of codes: decode to cells, re-encode the cell
        // center, and require the original code back.
        for code in (0u32..(1 << 30)).step_by((1 << 30) / 997) {
            let (x, y, z) = morton3_30_decode(code);
            let center = Vec3::new(x as f32 + 0.5, y as f32 + 0.5, z as f32 + 0.5) / 1024.0;
            assert_eq!(morton3_30(center), code, "code {code:#x}");
        }
    }

    #[test]
    fn codes_distinguish_octants() {
        let mut seen = std::collections::HashSet::new();
        for x in [0.25, 0.75] {
            for y in [0.25, 0.75] {
                for z in [0.25, 0.75] {
                    seen.insert(morton3_30(Vec3::new(x, y, z)) >> 27);
                }
            }
        }
        assert_eq!(
            seen.len(),
            8,
            "the 8 octants must map to 8 distinct top octant codes"
        );
    }
}
