//! Orthonormal bases around a normal vector.

use crate::Vec3;

/// An orthonormal basis `(tangent, bitangent, normal)`.
///
/// Used to transform hemisphere samples from local space (where the normal is
/// +Z) into world space when generating ambient-occlusion rays (§2.3, §5.2).
///
/// # Examples
///
/// ```
/// use rip_math::{Onb, Vec3};
///
/// let onb = Onb::from_normal(Vec3::new(0.0, 1.0, 0.0));
/// let world = onb.to_world(Vec3::new(0.0, 0.0, 1.0));
/// assert!((world - Vec3::new(0.0, 1.0, 0.0)).length() < 1e-6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Onb {
    /// First tangent.
    pub tangent: Vec3,
    /// Second tangent.
    pub bitangent: Vec3,
    /// The normal (local +Z).
    pub normal: Vec3,
}

impl Onb {
    /// Builds a right-handed basis whose +Z axis is `normal`.
    ///
    /// Uses the branchless Duff et al. construction, numerically stable for
    /// every unit input.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `normal` is approximately unit length.
    pub fn from_normal(normal: Vec3) -> Self {
        debug_assert!(
            (normal.length() - 1.0).abs() < 1e-3,
            "normal must be unit: {normal:?}"
        );
        let sign = if normal.z >= 0.0 { 1.0f32 } else { -1.0f32 };
        let a = -1.0 / (sign + normal.z);
        let b = normal.x * normal.y * a;
        let tangent = Vec3::new(
            1.0 + sign * normal.x * normal.x * a,
            sign * b,
            -sign * normal.x,
        );
        let bitangent = Vec3::new(b, sign + normal.y * normal.y * a, -normal.y);
        Onb {
            tangent,
            bitangent,
            normal,
        }
    }

    /// Transforms a local-space vector (normal = +Z) to world space.
    #[inline]
    pub fn to_world(&self, local: Vec3) -> Vec3 {
        self.tangent * local.x + self.bitangent * local.y + self.normal * local.z
    }

    /// Projects a world-space vector into this basis.
    #[inline]
    pub fn to_local(&self, world: Vec3) -> Vec3 {
        Vec3::new(
            world.dot(self.tangent),
            world.dot(self.bitangent),
            world.dot(self.normal),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_orthonormal(n: Vec3) {
        let onb = Onb::from_normal(n);
        assert!((onb.tangent.length() - 1.0).abs() < 1e-5);
        assert!((onb.bitangent.length() - 1.0).abs() < 1e-5);
        assert!(onb.tangent.dot(onb.bitangent).abs() < 1e-5);
        assert!(onb.tangent.dot(onb.normal).abs() < 1e-5);
        assert!(onb.bitangent.dot(onb.normal).abs() < 1e-5);
        // Right-handed: t × b = n.
        assert!((onb.tangent.cross(onb.bitangent) - onb.normal).length() < 1e-5);
    }

    #[test]
    fn orthonormal_for_axes() {
        for n in [Vec3::X, Vec3::Y, Vec3::Z, -Vec3::X, -Vec3::Y, -Vec3::Z] {
            check_orthonormal(n);
        }
    }

    #[test]
    fn orthonormal_for_oblique_normals() {
        for n in [
            Vec3::new(1.0, 2.0, 3.0).normalized(),
            Vec3::new(-0.1, 0.9, -0.4).normalized(),
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::new(1e-4, 1e-4, 1.0).normalized(),
        ] {
            check_orthonormal(n);
        }
    }

    #[test]
    fn world_local_round_trip() {
        let onb = Onb::from_normal(Vec3::new(0.3, -0.5, 0.8).normalized());
        let v = Vec3::new(0.2, 0.7, -0.4);
        let rt = onb.to_local(onb.to_world(v));
        assert!((rt - v).length() < 1e-5);
    }

    #[test]
    fn local_z_maps_to_normal() {
        let n = Vec3::new(-2.0, 1.0, 0.5).normalized();
        let onb = Onb::from_normal(n);
        assert!((onb.to_world(Vec3::Z) - n).length() < 1e-5);
    }
}
