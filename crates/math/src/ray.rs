//! Rays: semi-infinite lines with a parametric validity interval.

use crate::Vec3;

/// A ray `o + t·d` valid for `t ∈ [t_min, t_max]`.
///
/// §2.2 of the paper characterizes rays by an origin, direction and length;
/// the length of ambient-occlusion rays (25–40% of the scene bounding-box
/// diagonal) is expressed through `t_max`. The direction is stored as given —
/// workload generators normalize it so that `t` is measured in world units.
///
/// # Examples
///
/// ```
/// use rip_math::{Ray, Vec3};
///
/// let ray = Ray::segment(Vec3::ZERO, Vec3::X, 2.0);
/// assert_eq!(ray.at(1.5), Vec3::new(1.5, 0.0, 0.0));
/// assert!(ray.contains_t(2.0));
/// assert!(!ray.contains_t(2.5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ray {
    /// Ray origin `o`.
    pub origin: Vec3,
    /// Ray direction `d` (normalized by convention).
    pub direction: Vec3,
    /// Minimum valid parameter (used to avoid self-intersection).
    pub t_min: f32,
    /// Maximum valid parameter (the ray "length" for occlusion rays).
    pub t_max: f32,
}

/// A small positive `t_min` default that avoids self-intersection of
/// secondary rays with the surface they originate from.
pub const DEFAULT_T_MIN: f32 = 1e-3;

impl Ray {
    /// Creates an unbounded ray (`t ∈ [DEFAULT_T_MIN, ∞)`).
    #[inline]
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Ray {
            origin,
            direction,
            t_min: DEFAULT_T_MIN,
            t_max: f32::INFINITY,
        }
    }

    /// Creates a finite ray segment with the given maximum parameter.
    ///
    /// Occlusion rays are finite: ambient-occlusion ray lengths are chosen as
    /// a fraction of the scene bounding-box diagonal (§5.2).
    #[inline]
    pub fn segment(origin: Vec3, direction: Vec3, t_max: f32) -> Self {
        Ray {
            origin,
            direction,
            t_min: DEFAULT_T_MIN,
            t_max,
        }
    }

    /// Creates a ray with an explicit parameter interval.
    #[inline]
    pub fn with_interval(origin: Vec3, direction: Vec3, t_min: f32, t_max: f32) -> Self {
        Ray {
            origin,
            direction,
            t_min,
            t_max,
        }
    }

    /// The point `o + t·d`.
    #[inline]
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// Whether `t` lies inside the ray's validity interval.
    #[inline]
    pub fn contains_t(&self, t: f32) -> bool {
        t >= self.t_min && t <= self.t_max
    }

    /// Component-wise reciprocal of the direction, precomputed once per ray
    /// by traversal loops for the slab test.
    #[inline]
    pub fn inv_direction(&self) -> Vec3 {
        self.direction.recip()
    }

    /// Returns a copy with `t_max` shortened to `t` (never lengthened).
    ///
    /// Used by the global-illumination extension (§6.4) where a predicted
    /// intersection trims the ray's maximum length before traversal.
    #[inline]
    pub fn trimmed(&self, t: f32) -> Ray {
        Ray {
            t_max: self.t_max.min(t),
            ..*self
        }
    }

    /// The Euclidean length of the valid segment (`∞` for unbounded rays
    /// with a unit direction).
    #[inline]
    pub fn segment_length(&self) -> f32 {
        (self.t_max - self.t_min) * self.direction.length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_unbounded() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        assert_eq!(r.t_max, f32::INFINITY);
        assert!(r.contains_t(1e30));
        assert!(!r.contains_t(0.0)); // below DEFAULT_T_MIN
    }

    #[test]
    fn at_evaluates_parametrically() {
        let r = Ray::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(r.at(0.5), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn trimmed_never_lengthens() {
        let r = Ray::segment(Vec3::ZERO, Vec3::X, 5.0);
        assert_eq!(r.trimmed(3.0).t_max, 3.0);
        assert_eq!(r.trimmed(10.0).t_max, 5.0);
    }

    #[test]
    fn segment_length_scales_with_direction() {
        let r = Ray::with_interval(Vec3::ZERO, Vec3::X * 2.0, 0.0, 3.0);
        assert_eq!(r.segment_length(), 6.0);
    }

    #[test]
    fn with_interval_respects_bounds() {
        let r = Ray::with_interval(Vec3::ZERO, Vec3::X, 1.0, 2.0);
        assert!(!r.contains_t(0.5));
        assert!(r.contains_t(1.5));
        assert!(!r.contains_t(2.5));
    }
}
