//! Random sampling routines for workload generation.
//!
//! §5.2: "creating four AO rays per hit point by random cosine sampling the
//! upper hemisphere surrounding the point". All samplers take `(u, v)` in
//! `[0,1)²` so callers control the random source (we use seeded `SmallRng`
//! throughout the workspace for reproducibility).

use crate::{Onb, Vec3};

/// Cosine-weighted hemisphere sample around +Z from uniform `(u, v)`.
///
/// Uses the concentric-free polar mapping: `(r, φ) = (√u, 2πv)`,
/// `z = √(1−u)`. The returned vector is unit length, with `z ≥ 0`.
///
/// # Examples
///
/// ```
/// use rip_math::sampling::cosine_hemisphere;
///
/// let d = cosine_hemisphere(0.3, 0.7);
/// assert!(d.z >= 0.0);
/// assert!((d.length() - 1.0).abs() < 1e-5);
/// ```
pub fn cosine_hemisphere(u: f32, v: f32) -> Vec3 {
    let r = u.sqrt();
    let phi = 2.0 * std::f32::consts::PI * v;
    let x = r * phi.cos();
    let y = r * phi.sin();
    let z = (1.0 - u).max(0.0).sqrt();
    Vec3::new(x, y, z)
}

/// Cosine-weighted hemisphere sample around an arbitrary unit `normal`.
pub fn cosine_hemisphere_around(normal: Vec3, u: f32, v: f32) -> Vec3 {
    Onb::from_normal(normal).to_world(cosine_hemisphere(u, v))
}

/// Uniform sample on the unit sphere from `(u, v)`.
pub fn uniform_sphere(u: f32, v: f32) -> Vec3 {
    let z = 1.0 - 2.0 * u;
    let r = (1.0 - z * z).max(0.0).sqrt();
    let phi = 2.0 * std::f32::consts::PI * v;
    Vec3::new(r * phi.cos(), r * phi.sin(), z)
}

/// Uniform sample inside the unit disk (polar mapping).
pub fn uniform_disk(u: f32, v: f32) -> (f32, f32) {
    let r = u.sqrt();
    let phi = 2.0 * std::f32::consts::PI * v;
    (r * phi.cos(), r * phi.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cosine_hemisphere_is_unit_and_upper() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = cosine_hemisphere(rng.gen(), rng.gen());
            assert!(d.z >= -1e-6);
            assert!((d.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_hemisphere_mean_cos_is_two_thirds() {
        // E[cos θ] under pdf cosθ/π over hemisphere = 2/3.
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f32 = (0..n)
            .map(|_| cosine_hemisphere(rng.gen(), rng.gen()).z)
            .sum::<f32>()
            / n as f32;
        assert!((mean - 2.0 / 3.0).abs() < 0.01, "mean cos {mean}");
    }

    #[test]
    fn around_normal_stays_in_hemisphere() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = Vec3::new(1.0, -2.0, 0.5).normalized();
        for _ in 0..1000 {
            let d = cosine_hemisphere_around(n, rng.gen(), rng.gen());
            assert!(d.dot(n) >= -1e-4, "sample below surface: {d:?}");
        }
    }

    #[test]
    fn uniform_sphere_is_unit_and_balanced() {
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 20_000;
        let mut mean = Vec3::ZERO;
        for _ in 0..n {
            let d = uniform_sphere(rng.gen(), rng.gen());
            assert!((d.length() - 1.0).abs() < 1e-4);
            mean += d;
        }
        assert!((mean / n as f32).length() < 0.02);
    }

    #[test]
    fn uniform_disk_inside_unit_circle() {
        let mut rng = SmallRng::seed_from_u64(19);
        for _ in 0..1000 {
            let (x, y) = uniform_disk(rng.gen(), rng.gen());
            assert!(x * x + y * y <= 1.0 + 1e-5);
        }
    }
}
