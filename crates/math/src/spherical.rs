//! Direction ↔ spherical-coordinate conversions.
//!
//! The Grid Spherical hash (§4.2.1) quantizes a ray direction by its polar
//! angle `θ ∈ [0°, 180°)` and azimuth `φ ∈ [0°, 360°)`. These helpers perform
//! the conversion in degrees exactly as the hash consumes them.

use crate::Vec3;

/// Spherical angles of a direction, in degrees.
///
/// `theta` is measured from the +Z axis, `phi` counter-clockwise from +X in
/// the XY plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SphericalDeg {
    /// Polar angle in `[0, 180]`.
    pub theta: f32,
    /// Azimuthal angle in `[0, 360)`.
    pub phi: f32,
}

/// Converts a (not necessarily normalized) direction to spherical degrees.
///
/// The zero vector maps to `(0, 0)`.
///
/// # Examples
///
/// ```
/// use rip_math::{spherical::to_spherical_deg, Vec3};
///
/// let s = to_spherical_deg(Vec3::Z);
/// assert!(s.theta.abs() < 1e-4);
/// let s = to_spherical_deg(Vec3::new(0.0, 1.0, 0.0));
/// assert!((s.phi - 90.0).abs() < 1e-3);
/// ```
pub fn to_spherical_deg(dir: Vec3) -> SphericalDeg {
    let len = dir.length();
    if len == 0.0 {
        return SphericalDeg {
            theta: 0.0,
            phi: 0.0,
        };
    }
    let theta = (dir.z / len).clamp(-1.0, 1.0).acos().to_degrees();
    let mut phi = dir.y.atan2(dir.x).to_degrees();
    if phi < 0.0 {
        phi += 360.0;
    }
    // atan2(±0, negative) can give exactly 360 after wrapping; keep [0,360).
    if phi >= 360.0 {
        phi -= 360.0;
    }
    SphericalDeg { theta, phi }
}

/// Converts spherical degrees back to a unit direction.
///
/// # Examples
///
/// ```
/// use rip_math::{spherical::{from_spherical_deg, to_spherical_deg}, Vec3};
///
/// let d = Vec3::new(0.3, -0.5, 0.8).normalized();
/// let rt = from_spherical_deg(to_spherical_deg(d));
/// assert!((rt - d).length() < 1e-4);
/// ```
pub fn from_spherical_deg(s: SphericalDeg) -> Vec3 {
    let theta = s.theta.to_radians();
    let phi = s.phi.to_radians();
    Vec3::new(
        theta.sin() * phi.cos(),
        theta.sin() * phi.sin(),
        theta.cos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axes_map_to_expected_angles() {
        let z = to_spherical_deg(Vec3::Z);
        assert!(z.theta.abs() < 1e-4);
        let nz = to_spherical_deg(-Vec3::Z);
        assert!((nz.theta - 180.0).abs() < 1e-3);
        let x = to_spherical_deg(Vec3::X);
        assert!((x.theta - 90.0).abs() < 1e-3 && x.phi.abs() < 1e-3);
        let ny = to_spherical_deg(-Vec3::Y);
        assert!((ny.phi - 270.0).abs() < 1e-3);
    }

    #[test]
    fn phi_stays_in_range() {
        for i in 0..360 {
            let a = (i as f32).to_radians();
            let s = to_spherical_deg(Vec3::new(a.cos(), a.sin(), 0.1));
            assert!((0.0..360.0).contains(&s.phi), "phi {} out of range", s.phi);
            assert!((0.0..=180.0).contains(&s.theta));
        }
    }

    #[test]
    fn zero_vector_maps_to_origin_angles() {
        assert_eq!(
            to_spherical_deg(Vec3::ZERO),
            SphericalDeg {
                theta: 0.0,
                phi: 0.0
            }
        );
    }

    #[test]
    fn round_trip_preserves_direction() {
        let dirs = [
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(-1.0, 0.5, -0.25),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(-3.0, -4.0, 5.0),
        ];
        for d in dirs {
            let n = d.normalized();
            let rt = from_spherical_deg(to_spherical_deg(n));
            assert!((rt - n).length() < 1e-4, "{n:?} vs {rt:?}");
        }
    }

    #[test]
    fn scale_invariance() {
        let d = Vec3::new(0.2, -0.7, 0.4);
        let a = to_spherical_deg(d);
        let b = to_spherical_deg(d * 100.0);
        assert!((a.theta - b.theta).abs() < 1e-3);
        assert!((a.phi - b.phi).abs() < 1e-3);
    }
}
