//! Triangles and the Möller–Trumbore ray/triangle intersection test.

use crate::{Aabb, Ray, Vec3};

/// A triangle given by its three vertices.
///
/// `RayTriTest` of Algorithm 1 is [`Triangle::intersect`]. The intersection
/// unit of the paper's RT unit (§5.1.3) evaluates this test in a two-stage
/// pipeline; the timing simulator models that latency while this type
/// provides the functional result.
///
/// # Examples
///
/// ```
/// use rip_math::{Ray, Triangle, Vec3};
///
/// let tri = Triangle::new(
///     Vec3::new(0.0, 0.0, 0.0),
///     Vec3::new(1.0, 0.0, 0.0),
///     Vec3::new(0.0, 1.0, 0.0),
/// );
/// let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::Z);
/// let hit = tri.intersect(&ray).expect("ray should hit");
/// assert!((hit.t - 1.0).abs() < 1e-5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct Triangle {
    /// First vertex.
    pub a: Vec3,
    /// Second vertex.
    pub b: Vec3,
    /// Third vertex.
    pub c: Vec3,
}

// Triangles are stored verbatim in the BVH artifact's TRIS section.
rip_pod::impl_pod!(Triangle, size = 36, align = 4);

/// Result of a successful ray/triangle intersection.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TriangleHit {
    /// Ray parameter of the hit point.
    pub t: f32,
    /// First barycentric coordinate (weight of vertex `b`).
    pub u: f32,
    /// Second barycentric coordinate (weight of vertex `c`).
    pub v: f32,
}

impl TriangleHit {
    /// Barycentric weight of vertex `a` (`1 - u - v`).
    #[inline]
    pub fn w(&self) -> f32 {
        1.0 - self.u - self.v
    }
}

impl Triangle {
    /// Creates a triangle from three vertices.
    #[inline]
    pub const fn new(a: Vec3, b: Vec3, c: Vec3) -> Self {
        Triangle { a, b, c }
    }

    /// The triangle centroid (used for SAH binning during BVH construction).
    #[inline]
    pub fn centroid(&self) -> Vec3 {
        (self.a + self.b + self.c) / 3.0
    }

    /// Bounding box of the triangle.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        Aabb::empty().grow(self.a).grow(self.b).grow(self.c)
    }

    /// Geometric (unnormalized) normal `(b−a) × (c−a)`.
    #[inline]
    pub fn geometric_normal(&self) -> Vec3 {
        (self.b - self.a).cross(self.c - self.a)
    }

    /// Unit normal, or `None` for degenerate triangles.
    #[inline]
    pub fn unit_normal(&self) -> Option<Vec3> {
        self.geometric_normal().try_normalized()
    }

    /// Twice the triangle area equals the normal length; the area itself.
    #[inline]
    pub fn area(&self) -> f32 {
        0.5 * self.geometric_normal().length()
    }

    /// Möller–Trumbore intersection against the ray's `[t_min, t_max]`
    /// interval. Backface hits are reported (occlusion rays do not cull).
    ///
    /// Returns `None` for misses, for hits outside the interval, and for
    /// degenerate (zero-area) triangles.
    #[inline]
    pub fn intersect(&self, ray: &Ray) -> Option<TriangleHit> {
        let e1 = self.b - self.a;
        let e2 = self.c - self.a;
        let p = ray.direction.cross(e2);
        let det = e1.dot(p);
        // No culling: accept both orientations. Reject near-degenerate
        // configurations with a scale-relative epsilon so sliver triangles
        // cannot amplify rounding error into spurious hits.
        let scale = e1.length() * e2.length() * ray.direction.length();
        if det.abs() <= 1e-8 * scale || scale == 0.0 {
            return None;
        }
        let inv_det = 1.0 / det;
        let s = ray.origin - self.a;
        let u = s.dot(p) * inv_det;
        if !(0.0..=1.0).contains(&u) {
            return None;
        }
        let q = s.cross(e1);
        let v = ray.direction.dot(q) * inv_det;
        if v < 0.0 || u + v > 1.0 {
            return None;
        }
        let t = e2.dot(q) * inv_det;
        if ray.contains_t(t) {
            Some(TriangleHit { t, u, v })
        } else {
            None
        }
    }

    /// Any-hit shortcut: `true` when the segment intersects the triangle.
    ///
    /// Occlusion rays (ambient occlusion, shadows) only need this predicate
    /// (§2.3), which is why the predictor can elide whole traversals.
    #[inline]
    pub fn intersects(&self, ray: &Ray) -> bool {
        self.intersect(ray).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy_tri() -> Triangle {
        Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)
    }

    #[test]
    fn frontal_hit_has_correct_t_and_barycentrics() {
        let ray = Ray::new(Vec3::new(0.25, 0.25, -3.0), Vec3::Z);
        let hit = xy_tri().intersect(&ray).unwrap();
        assert!((hit.t - 3.0).abs() < 1e-5);
        assert!((hit.u - 0.25).abs() < 1e-5);
        assert!((hit.v - 0.25).abs() < 1e-5);
        assert!((hit.w() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn backface_hit_is_reported() {
        let ray = Ray::new(Vec3::new(0.25, 0.25, 3.0), -Vec3::Z);
        assert!(xy_tri().intersects(&ray));
    }

    #[test]
    fn miss_outside_edges() {
        let ray = Ray::new(Vec3::new(0.9, 0.9, -1.0), Vec3::Z); // u+v > 1
        assert!(!xy_tri().intersects(&ray));
        let ray = Ray::new(Vec3::new(-0.1, 0.5, -1.0), Vec3::Z); // u < 0
        assert!(!xy_tri().intersects(&ray));
    }

    #[test]
    fn parallel_ray_misses() {
        let ray = Ray::new(Vec3::new(0.2, 0.2, 1.0), Vec3::X);
        assert!(!xy_tri().intersects(&ray));
    }

    #[test]
    fn hit_beyond_t_max_is_rejected() {
        let ray = Ray::segment(Vec3::new(0.25, 0.25, -3.0), Vec3::Z, 2.0);
        assert!(!xy_tri().intersects(&ray));
    }

    #[test]
    fn hit_before_t_min_is_rejected() {
        let ray = Ray::with_interval(Vec3::new(0.25, 0.25, -3.0), Vec3::Z, 4.0, 10.0);
        assert!(!xy_tri().intersects(&ray));
    }

    #[test]
    fn degenerate_triangle_never_hits() {
        let deg = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::X * 2.0);
        let ray = Ray::new(Vec3::new(0.5, 0.0, -1.0), Vec3::Z);
        assert!(!deg.intersects(&ray));
        assert_eq!(deg.unit_normal(), None);
    }

    #[test]
    fn centroid_bounds_area_normal() {
        let t = xy_tri();
        assert_eq!(t.centroid(), Vec3::new(1.0 / 3.0, 1.0 / 3.0, 0.0));
        assert_eq!(t.bounds().min, Vec3::ZERO);
        assert_eq!(t.bounds().max, Vec3::new(1.0, 1.0, 0.0));
        assert!((t.area() - 0.5).abs() < 1e-6);
        assert_eq!(t.unit_normal().unwrap(), Vec3::Z);
    }
}
