//! 3-component `f32` vector.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-component single-precision vector used for points, directions and
/// colors.
///
/// All fields are public: this is a passive, C-style compound value in the
/// sense of the API guidelines, and graphics code mutates components
/// directly.
///
/// # Examples
///
/// ```
/// use rip_math::Vec3;
///
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::splat(2.0);
/// assert_eq!(a + b, Vec3::new(3.0, 4.0, 5.0));
/// assert_eq!(a.dot(b), 12.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

// Three f32 fields, no padding: Vec3 arrays are cast in place out of
// RIPA artifact sections.
rip_pod::impl_pod!(Vec3, size = 12, align = 4);

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };
    /// Unit X axis.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit Y axis.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit Z axis.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f32 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns the vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the vector length is zero or not finite.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        debug_assert!(len.is_finite() && len > 0.0, "cannot normalize {self:?}");
        self / len
    }

    /// Returns the unit vector, or `None` when the length is zero / NaN.
    #[inline]
    pub fn try_normalized(self) -> Option<Vec3> {
        let len = self.length();
        if len.is_finite() && len > 0.0 {
            Some(self / len)
        } else {
            None
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }

    /// The smallest component.
    #[inline]
    pub fn min_component(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// The largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Index of the component with the largest absolute value (0, 1 or 2).
    #[inline]
    pub fn largest_axis(self) -> usize {
        let a = Vec3::new(self.x.abs(), self.y.abs(), self.z.abs());
        if a.x >= a.y && a.x >= a.z {
            0
        } else if a.y >= a.z {
            1
        } else {
            2
        }
    }

    /// Component-wise reciprocal. Components equal to zero produce `inf`
    /// with the sign of the zero, which is exactly what the slab test wants.
    #[inline]
    pub fn recip(self) -> Vec3 {
        Vec3::new(1.0 / self.x, 1.0 / self.y, 1.0 / self.z)
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Linear interpolation: `self * (1 - t) + rhs * t`.
    #[inline]
    pub fn lerp(self, rhs: Vec3, t: f32) -> Vec3 {
        self * (1.0 - t) + rhs * t
    }

    /// Returns `true` when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f32; 3]> for Vec3 {
    #[inline]
    fn from(a: [f32; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    /// Accesses a component by axis index.
    ///
    /// # Panics
    ///
    /// Panics when `index > 2`.
    #[inline]
    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Mul<Vec3> for Vec3 {
    type Output = Vec3;
    /// Component-wise (Hadamard) product.
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }
}

impl MulAssign<f32> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f32) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl std::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Vec3::splat(3.0), Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(Vec3::ZERO + Vec3::ONE, Vec3::ONE);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a * b, Vec3::new(4.0, 10.0, 18.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::ONE;
        v += Vec3::ONE;
        v -= Vec3::new(0.5, 0.5, 0.5);
        v *= 2.0;
        v /= 3.0;
        assert_eq!(v, Vec3::splat(1.0));
    }

    #[test]
    fn dot_cross_orthogonality() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-5);
        assert!(c.dot(b).abs() < 1e-5);
    }

    #[test]
    fn length_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-6);
        assert_eq!(Vec3::ZERO.try_normalized(), None);
        assert!(Vec3::new(f32::NAN, 0.0, 0.0).try_normalized().is_none());
    }

    #[test]
    fn min_max_components() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 3.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 0.0));
        assert_eq!(a.min_component(), -2.0);
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn largest_axis_picks_dominant() {
        assert_eq!(Vec3::new(-5.0, 1.0, 1.0).largest_axis(), 0);
        assert_eq!(Vec3::new(1.0, -5.0, 1.0).largest_axis(), 1);
        assert_eq!(Vec3::new(1.0, 1.0, 5.0).largest_axis(), 2);
    }

    #[test]
    fn recip_of_zero_is_signed_infinity() {
        let r = Vec3::new(0.0, -0.0, 2.0).recip();
        assert_eq!(r.x, f32::INFINITY);
        assert_eq!(r.y, f32::NEG_INFINITY);
        assert_eq!(r.z, 0.5);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::splat(2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(1.0));
    }

    #[test]
    fn indexing_and_conversion() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
        assert_eq!(Vec3::from([7.0, 8.0, 9.0]), v);
        let arr: [f32; 3] = v.into();
        assert_eq!(arr, [7.0, 8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    #[test]
    fn sum_iterator() {
        let total: Vec3 = [Vec3::X, Vec3::Y, Vec3::Z].into_iter().sum();
        assert_eq!(total, Vec3::ONE);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Vec3::ZERO.to_string(), "(0, 0, 0)");
    }
}
