//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rip_math::{morton, spherical, Aabb, Onb, Ray, Triangle, Vec3};

fn vec3_in(range: std::ops::Range<f32>) -> impl Strategy<Value = Vec3> {
    (range.clone(), range.clone(), range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_vec3() -> impl Strategy<Value = Vec3> {
    vec3_in(-1.0..1.0)
        .prop_filter("nonzero", |v| v.length() > 1e-3)
        .prop_map(|v| v.normalized())
}

proptest! {
    #[test]
    fn aabb_union_is_commutative_and_contains_operands(
        a in vec3_in(-100.0..100.0), b in vec3_in(-100.0..100.0),
        c in vec3_in(-100.0..100.0), d in vec3_in(-100.0..100.0),
    ) {
        let x = Aabb::new(a, b);
        let y = Aabb::new(c, d);
        let u = x.union(&y);
        prop_assert_eq!(u, y.union(&x));
        prop_assert!(u.contains_box(&x));
        prop_assert!(u.contains_box(&y));
    }

    #[test]
    fn aabb_surface_area_monotone_under_union(
        a in vec3_in(-10.0..10.0), b in vec3_in(-10.0..10.0),
        p in vec3_in(-10.0..10.0),
    ) {
        let x = Aabb::new(a, b);
        prop_assert!(x.grow(p).surface_area() + 1e-3 >= x.surface_area());
    }

    #[test]
    fn slab_test_agrees_with_sampled_containment(
        origin in vec3_in(-5.0..5.0),
        dir in unit_vec3(),
        a in vec3_in(-2.0..2.0),
        b in vec3_in(-2.0..2.0),
    ) {
        let bbox = Aabb::new(a, b);
        let ray = Ray::with_interval(origin, dir, 0.0, 100.0);
        // Dense parametric sampling as ground truth (conservative: only
        // asserts one direction — if a sample is inside, the slab test must
        // report a hit).
        let sampled_hit = (0..=2000)
            .map(|i| ray.at(100.0 * i as f32 / 2000.0))
            .any(|p| bbox.contains_point(p));
        if sampled_hit {
            prop_assert!(bbox.intersect(&ray).is_some(),
                "sampling found containment but slab test missed");
        }
    }

    #[test]
    fn slab_entry_point_lies_on_or_in_box(
        origin in vec3_in(-5.0..5.0),
        dir in unit_vec3(),
        a in vec3_in(-2.0..2.0),
        b in vec3_in(-2.0..2.0),
    ) {
        let bbox = Aabb::new(a, b);
        let ray = Ray::with_interval(origin, dir, 0.0, 100.0);
        if let Some(t) = bbox.intersect(&ray) {
            let p = ray.at(t);
            // Entry point is within an epsilon-inflated box.
            let inflated = Aabb::new(
                bbox.min - Vec3::splat(1e-2),
                bbox.max + Vec3::splat(1e-2),
            );
            prop_assert!(inflated.contains_point(p), "entry {p:?} outside {bbox:?}");
        }
    }

    #[test]
    fn triangle_hit_point_matches_barycentric_reconstruction(
        a in vec3_in(-3.0..3.0), b in vec3_in(-3.0..3.0), c in vec3_in(-3.0..3.0),
        origin in vec3_in(-10.0..10.0),
        dir in unit_vec3(),
    ) {
        let tri = Triangle::new(a, b, c);
        // Sliver triangles amplify float error arbitrarily; the functional
        // contract below is about well-conditioned geometry.
        prop_assume!(tri.area() > 1e-2);
        let ray = Ray::with_interval(origin, dir, 0.0, 1e4);
        if let Some(hit) = tri.intersect(&ray) {
            let p_ray = ray.at(hit.t);
            let p_bary = a * hit.w() + b * hit.u + c * hit.v;
            prop_assert!((p_ray - p_bary).length() < 2e-2 * (1.0 + p_ray.length()),
                "ray point {p_ray:?} != barycentric point {p_bary:?}");
            prop_assert!(hit.u >= 0.0 && hit.v >= 0.0 && hit.u + hit.v <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn triangle_hit_inside_bounds(
        a in vec3_in(-3.0..3.0), b in vec3_in(-3.0..3.0), c in vec3_in(-3.0..3.0),
        origin in vec3_in(-10.0..10.0),
        dir in unit_vec3(),
    ) {
        let tri = Triangle::new(a, b, c);
        prop_assume!(tri.area() > 1e-2);
        let ray = Ray::with_interval(origin, dir, 0.0, 1e4);
        if let Some(hit) = tri.intersect(&ray) {
            let inflated = Aabb::new(
                tri.bounds().min - Vec3::splat(1e-2),
                tri.bounds().max + Vec3::splat(1e-2),
            );
            prop_assert!(inflated.contains_point(ray.at(hit.t)));
        }
    }

    #[test]
    fn spherical_round_trip(d in unit_vec3()) {
        let rt = spherical::from_spherical_deg(spherical::to_spherical_deg(d));
        prop_assert!((rt - d).length() < 1e-3);
    }

    #[test]
    fn morton_code_in_range(p in vec3_in(0.0..1.0)) {
        prop_assert!(morton::morton3_30(p) < (1 << 30));
        prop_assert!(morton::morton3_60(p) < (1u64 << 60));
    }

    #[test]
    fn onb_preserves_length(n in unit_vec3(), v in vec3_in(-4.0..4.0)) {
        let onb = Onb::from_normal(n);
        let w = onb.to_world(v);
        prop_assert!((w.length() - v.length()).abs() < 1e-3 * (1.0 + v.length()));
        let rt = onb.to_local(w);
        prop_assert!((rt - v).length() < 1e-3 * (1.0 + v.length()));
    }

    #[test]
    fn normalize_point_maps_box_to_unit_cube(
        a in vec3_in(-50.0..50.0), b in vec3_in(-50.0..50.0), p in vec3_in(-60.0..60.0),
    ) {
        let bbox = Aabb::new(a, b);
        let q = bbox.normalize_point(p);
        prop_assert!(q.x >= 0.0 && q.x <= 1.0);
        prop_assert!(q.y >= 0.0 && q.y <= 1.0);
        prop_assert!(q.z >= 0.0 && q.z <= 1.0);
    }
}
