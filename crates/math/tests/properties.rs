//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rip_math::{morton, spherical, Aabb, Onb, Ray, Triangle, Vec3};

fn vec3_in(range: std::ops::Range<f32>) -> impl Strategy<Value = Vec3> {
    (range.clone(), range.clone(), range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_vec3() -> impl Strategy<Value = Vec3> {
    vec3_in(-1.0..1.0)
        .prop_filter("nonzero", |v| v.length() > 1e-3)
        .prop_map(|v| v.normalized())
}

proptest! {
    #[test]
    fn aabb_union_is_commutative_and_contains_operands(
        a in vec3_in(-100.0..100.0), b in vec3_in(-100.0..100.0),
        c in vec3_in(-100.0..100.0), d in vec3_in(-100.0..100.0),
    ) {
        let x = Aabb::new(a, b);
        let y = Aabb::new(c, d);
        let u = x.union(&y);
        prop_assert_eq!(u, y.union(&x));
        prop_assert!(u.contains_box(&x));
        prop_assert!(u.contains_box(&y));
    }

    #[test]
    fn aabb_surface_area_monotone_under_union(
        a in vec3_in(-10.0..10.0), b in vec3_in(-10.0..10.0),
        p in vec3_in(-10.0..10.0),
    ) {
        let x = Aabb::new(a, b);
        prop_assert!(x.grow(p).surface_area() + 1e-3 >= x.surface_area());
    }

    #[test]
    fn slab_test_agrees_with_sampled_containment(
        origin in vec3_in(-5.0..5.0),
        dir in unit_vec3(),
        a in vec3_in(-2.0..2.0),
        b in vec3_in(-2.0..2.0),
    ) {
        let bbox = Aabb::new(a, b);
        let ray = Ray::with_interval(origin, dir, 0.0, 100.0);
        // Dense parametric sampling as ground truth (conservative: only
        // asserts one direction — if a sample is inside, the slab test must
        // report a hit).
        let sampled_hit = (0..=2000)
            .map(|i| ray.at(100.0 * i as f32 / 2000.0))
            .any(|p| bbox.contains_point(p));
        if sampled_hit {
            prop_assert!(bbox.intersect(&ray).is_some(),
                "sampling found containment but slab test missed");
        }
    }

    #[test]
    fn slab_entry_point_lies_on_or_in_box(
        origin in vec3_in(-5.0..5.0),
        dir in unit_vec3(),
        a in vec3_in(-2.0..2.0),
        b in vec3_in(-2.0..2.0),
    ) {
        let bbox = Aabb::new(a, b);
        let ray = Ray::with_interval(origin, dir, 0.0, 100.0);
        if let Some(t) = bbox.intersect(&ray) {
            let p = ray.at(t);
            // Entry point is within an epsilon-inflated box.
            let inflated = Aabb::new(
                bbox.min - Vec3::splat(1e-2),
                bbox.max + Vec3::splat(1e-2),
            );
            prop_assert!(inflated.contains_point(p), "entry {p:?} outside {bbox:?}");
        }
    }

    #[test]
    fn triangle_hit_point_matches_barycentric_reconstruction(
        a in vec3_in(-3.0..3.0), b in vec3_in(-3.0..3.0), c in vec3_in(-3.0..3.0),
        origin in vec3_in(-10.0..10.0),
        dir in unit_vec3(),
    ) {
        let tri = Triangle::new(a, b, c);
        // Sliver triangles amplify float error arbitrarily; the functional
        // contract below is about well-conditioned geometry.
        prop_assume!(tri.area() > 1e-2);
        let ray = Ray::with_interval(origin, dir, 0.0, 1e4);
        if let Some(hit) = tri.intersect(&ray) {
            let p_ray = ray.at(hit.t);
            let p_bary = a * hit.w() + b * hit.u + c * hit.v;
            prop_assert!((p_ray - p_bary).length() < 2e-2 * (1.0 + p_ray.length()),
                "ray point {p_ray:?} != barycentric point {p_bary:?}");
            prop_assert!(hit.u >= 0.0 && hit.v >= 0.0 && hit.u + hit.v <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn triangle_hit_inside_bounds(
        a in vec3_in(-3.0..3.0), b in vec3_in(-3.0..3.0), c in vec3_in(-3.0..3.0),
        origin in vec3_in(-10.0..10.0),
        dir in unit_vec3(),
    ) {
        let tri = Triangle::new(a, b, c);
        prop_assume!(tri.area() > 1e-2);
        let ray = Ray::with_interval(origin, dir, 0.0, 1e4);
        if let Some(hit) = tri.intersect(&ray) {
            let inflated = Aabb::new(
                tri.bounds().min - Vec3::splat(1e-2),
                tri.bounds().max + Vec3::splat(1e-2),
            );
            prop_assert!(inflated.contains_point(ray.at(hit.t)));
        }
    }

    #[test]
    fn spherical_round_trip(d in unit_vec3()) {
        let rt = spherical::from_spherical_deg(spherical::to_spherical_deg(d));
        prop_assert!((rt - d).length() < 1e-3);
    }

    #[test]
    fn morton_code_in_range(p in vec3_in(0.0..1.0)) {
        prop_assert!(morton::morton3_30(p) < (1 << 30));
        prop_assert!(morton::morton3_60(p) < (1u64 << 60));
    }

    #[test]
    fn onb_preserves_length(n in unit_vec3(), v in vec3_in(-4.0..4.0)) {
        let onb = Onb::from_normal(n);
        let w = onb.to_world(v);
        prop_assert!((w.length() - v.length()).abs() < 1e-3 * (1.0 + v.length()));
        let rt = onb.to_local(w);
        prop_assert!((rt - v).length() < 1e-3 * (1.0 + v.length()));
    }

    #[test]
    fn normalize_point_maps_box_to_unit_cube(
        a in vec3_in(-50.0..50.0), b in vec3_in(-50.0..50.0), p in vec3_in(-60.0..60.0),
    ) {
        let bbox = Aabb::new(a, b);
        let q = bbox.normalize_point(p);
        prop_assert!(q.x >= 0.0 && q.x <= 1.0);
        prop_assert!(q.y >= 0.0 && q.y <= 1.0);
        prop_assert!(q.z >= 0.0 && q.z <= 1.0);
    }

    #[test]
    fn slab_test_agrees_with_naive_interval_test(
        origin in vec3_in(-6.0..6.0),
        dir in unit_vec3(),
        a in vec3_in(-3.0..3.0),
        b in vec3_in(-3.0..3.0),
    ) {
        let bbox = Aabb::new(a, b);
        let ray = Ray::with_interval(origin, dir, 0.0, 50.0);
        let naive = naive_interval_hit(&bbox, &ray);
        let slab = bbox.intersect(&ray).is_some();
        // The slab test is deliberately conservative (a few-ulp pad), so a
        // naive hit must always be found; a slab hit with a clear naive
        // miss (margin beyond the pad) is a bug.
        if naive {
            prop_assert!(slab, "naive interval test hit but slab test missed");
        }
        if slab && !naive {
            let margin = naive_min_gap(&bbox, &ray);
            prop_assert!(margin < 1e-3,
                "slab hit but naive interval empty by a clear margin {margin}");
        }
    }

    #[test]
    fn moller_trumbore_agrees_with_plucker_reference(
        a in vec3_in(-3.0..3.0), b in vec3_in(-3.0..3.0), c in vec3_in(-3.0..3.0),
        origin in vec3_in(-8.0..8.0),
        dir in unit_vec3(),
    ) {
        let tri = Triangle::new(a, b, c);
        prop_assume!(tri.area() > 1e-2);
        let ray = Ray::with_interval(origin, dir, 0.0, 1e4);
        let mt = tri.intersect(&ray);
        if let Some((t, edge_margin)) = plucker_intersect(&tri, &ray) {
            if edge_margin > 1e-3 {
                // Clearly interior by the reference: MT must agree on both
                // the verdict and the distance.
                prop_assert!(mt.is_some(), "Plücker reference hit, MT missed");
                let mt_t = mt.unwrap().t;
                prop_assert!((mt_t - t).abs() < 1e-3 * (1.0 + t.abs()),
                    "t disagreement: MT {mt_t} vs Plücker {t}");
            }
        } else if let Some(hit) = mt {
            // MT hits the reference rejects must hug the boundary.
            prop_assert!(hit.u < 1e-3 || hit.v < 1e-3 || hit.u + hit.v > 1.0 - 1e-3
                || plucker_near_parallel(&tri, &ray),
                "MT hit at interior barycentrics (u={}, v={}) but reference missed",
                hit.u, hit.v);
        }
    }

    #[test]
    fn morton30_encode_decode_round_trip(p in vec3_in(0.0..1.0)) {
        let code = morton::morton3_30(p);
        let (x, y, z) = morton::morton3_30_decode(code);
        // Decoded cells are exactly the quantized coordinates.
        prop_assert_eq!(x, (p.x * 1024.0).min(1023.0) as u32);
        prop_assert_eq!(y, (p.y * 1024.0).min(1023.0) as u32);
        prop_assert_eq!(z, (p.z * 1024.0).min(1023.0) as u32);
        // Re-encoding the cell center reproduces the code exactly.
        let center = Vec3::new(x as f32 + 0.5, y as f32 + 0.5, z as f32 + 0.5) / 1024.0;
        prop_assert_eq!(morton::morton3_30(center), code);
    }

    #[test]
    fn morton60_encode_decode_round_trip(p in vec3_in(0.0..1.0)) {
        let code = morton::morton3_60(p);
        let (x, y, z) = morton::morton3_60_decode(code);
        prop_assert!(x < (1 << 20) && y < (1 << 20) && z < (1 << 20));
        // The decoded cell contains the point (up to f32 quantization).
        let scale = (1u64 << 20) as f32;
        let cell_min = Vec3::new(x as f32, y as f32, z as f32) / scale;
        prop_assert!((p.x - cell_min.x).abs() <= 2.0 / scale);
        prop_assert!((p.y - cell_min.y).abs() <= 2.0 / scale);
        prop_assert!((p.z - cell_min.z).abs() <= 2.0 / scale);
    }
}

/// Naive per-axis interval intersection, with explicit handling of zero
/// direction components (no reciprocal, no ±inf arithmetic).
fn naive_interval_hit(bbox: &Aabb, ray: &Ray) -> bool {
    naive_interval(bbox, ray).is_some()
}

fn naive_interval(bbox: &Aabb, ray: &Ray) -> Option<(f32, f32)> {
    let (mut lo, mut hi) = (ray.t_min, ray.t_max);
    for axis in 0..3 {
        let (o, d, min, max) = (
            ray.origin.to_array()[axis],
            ray.direction.to_array()[axis],
            bbox.min.to_array()[axis],
            bbox.max.to_array()[axis],
        );
        if d == 0.0 {
            if o < min || o > max {
                return None;
            }
            continue;
        }
        let (t0, t1) = ((min - o) / d, (max - o) / d);
        let (t0, t1) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        lo = lo.max(t0);
        hi = hi.min(t1);
        if lo > hi {
            return None;
        }
    }
    Some((lo, hi))
}

/// How far the naive interval is from being non-empty (0 when it is).
fn naive_min_gap(bbox: &Aabb, ray: &Ray) -> f32 {
    let (mut lo, mut hi) = (ray.t_min, ray.t_max);
    let mut gap = 0.0f32;
    for axis in 0..3 {
        let (o, d, min, max) = (
            ray.origin.to_array()[axis],
            ray.direction.to_array()[axis],
            bbox.min.to_array()[axis],
            bbox.max.to_array()[axis],
        );
        if d == 0.0 {
            if o < min {
                gap = gap.max(min - o);
            }
            if o > max {
                gap = gap.max(o - max);
            }
            continue;
        }
        let (t0, t1) = ((min - o) / d, (max - o) / d);
        let (t0, t1) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
        lo = lo.max(t0);
        hi = hi.min(t1);
    }
    gap.max(lo - hi)
}

/// Plücker-style reference intersection: plane crossing via the geometric
/// normal, then an inside test from the signs of edge-cross products.
/// Returns `(t, edge_margin)` where `edge_margin` is the smallest
/// normalized signed distance from the hit to an edge (≤ 0 on/outside).
fn plucker_intersect(tri: &Triangle, ray: &Ray) -> Option<(f32, f32)> {
    let n = tri.geometric_normal();
    let denom = n.dot(ray.direction);
    if denom.abs() <= 1e-9 * n.length() * ray.direction.length() {
        return None;
    }
    let t = n.dot(tri.a - ray.origin) / denom;
    if !ray.contains_t(t) {
        return None;
    }
    let p = ray.at(t);
    let n2 = n.length_squared();
    // Signed edge tests: positive for points on the triangle's side.
    let margin = [(tri.a, tri.b), (tri.b, tri.c), (tri.c, tri.a)]
        .into_iter()
        .map(|(from, to)| (to - from).cross(p - from).dot(n) / n2)
        .fold(f32::INFINITY, f32::min);
    if margin >= 0.0 {
        Some((t, margin))
    } else {
        None
    }
}

/// Whether the ray is close enough to the triangle plane for the two
/// algorithms' degeneracy cutoffs to legitimately disagree.
fn plucker_near_parallel(tri: &Triangle, ray: &Ray) -> bool {
    let n = tri.geometric_normal();
    n.dot(ray.direction).abs() <= 1e-6 * n.length() * ray.direction.length()
}
