//! Pluggable time sources for spans and trace timestamps.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How an [`Obs`](crate::Obs) instance stamps events.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockMode {
    /// Microseconds of wall-clock time since the instance was created —
    /// what a human wants when reading a trace in `chrome://tracing`.
    #[default]
    Wall,
    /// A logical tick: every reading increments an atomic counter, so
    /// timestamps carry ordering but no wall time at all. Output built
    /// on a logical clock is stable enough to snapshot.
    Logical,
}

impl ClockMode {
    /// Parses `wall` / `logical` (as accepted by `RIP_TRACE_CLOCK`).
    pub fn parse(s: &str) -> Option<ClockMode> {
        match s {
            "wall" => Some(ClockMode::Wall),
            "logical" => Some(ClockMode::Logical),
            _ => None,
        }
    }
}

/// A monotonic clock in one of the [`ClockMode`]s.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
    origin: Instant,
    ticks: AtomicU64,
}

impl Clock {
    /// A clock starting at zero now.
    pub fn new(mode: ClockMode) -> Self {
        Clock {
            mode,
            origin: Instant::now(),
            ticks: AtomicU64::new(0),
        }
    }

    /// This clock's mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// The current reading: microseconds since creation (wall mode) or
    /// the next logical tick (logical mode).
    pub fn now_us(&self) -> u64 {
        match self.mode {
            ClockMode::Wall => self.origin.elapsed().as_micros() as u64,
            ClockMode::Logical => self.ticks.fetch_add(1, Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = Clock::new(ClockMode::Wall);
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
    }

    #[test]
    fn logical_clock_ticks_by_one() {
        let clock = Clock::new(ClockMode::Logical);
        assert_eq!(clock.now_us(), 0);
        assert_eq!(clock.now_us(), 1);
        assert_eq!(clock.now_us(), 2);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(ClockMode::parse("wall"), Some(ClockMode::Wall));
        assert_eq!(ClockMode::parse("logical"), Some(ClockMode::Logical));
        assert_eq!(ClockMode::parse("cycle-ish"), None);
    }
}
