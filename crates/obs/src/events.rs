//! Bounded structured event log.
//!
//! An [`Event`] is what used to be a raw `eprintln!`: a category, a
//! name, typed arguments, and (optionally) the exact stderr line the
//! call site used to print. Emitting an event appends it to a bounded
//! in-memory ring (old events drop first), prints the stderr text
//! verbatim when present — so human-readable diagnostics and the tests
//! that grep for them keep working — and forwards the structured part
//! to the trace sink.
//!
//! **Determinism contract.** `args` must hold only values that are a
//! pure function of the work performed — never of the thread schedule.
//! Wall-clock measurements are allowed but must use a key ending in
//! `_ms` or `_us`, which trace normalization strips; free-form timing
//! belongs in `stderr_text`, which is never exported to the trace.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A typed event argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned counter-ish value.
    U64(u64),
    /// A short string (labels, paths, outcome names).
    Str(String),
}

impl std::fmt::Display for ArgValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::Str(s) => f.write_str(s),
        }
    }
}

/// One structured diagnostic event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Dotted source category (`exec.cache`, `exec.journal`, …).
    pub cat: String,
    /// Event name within the category (`artifact_hit`, `quarantine`, …).
    pub name: String,
    /// Structured arguments (see the module-level determinism contract).
    pub args: Vec<(String, ArgValue)>,
    /// The exact stderr line this event prints, when it prints one.
    pub stderr_text: Option<String>,
}

/// A bounded FIFO of recent events.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl EventLog {
    /// A log retaining at most `capacity` events (oldest drop first).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends `event`, evicting the oldest entry when full.
    pub fn push(&self, event: Event) {
        let mut buf = self.buf.lock().unwrap_or_else(|p| p.into_inner());
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.buf
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str) -> Event {
        Event {
            cat: "test".into(),
            name: name.into(),
            args: vec![("k".into(), ArgValue::U64(1))],
            stderr_text: None,
        }
    }

    #[test]
    fn log_is_bounded_and_drops_oldest() {
        let log = EventLog::new(3);
        for name in ["a", "b", "c", "d", "e"] {
            log.push(event(name));
        }
        let names: Vec<String> = log.recent().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["c", "d", "e"]);
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn arg_display() {
        assert_eq!(ArgValue::U64(42).to_string(), "42");
        assert_eq!(ArgValue::Str("x".into()).to_string(), "x");
    }
}
