//! Log-bucketed latency histograms with deterministic merge.
//!
//! The service layer (`rip-serve`) and the span summary need latency
//! percentiles without retaining every sample. [`Histogram`] buckets
//! values on a logarithmic grid — each power-of-two octave is split
//! into [`SUB_BUCKETS`] linear sub-buckets, HdrHistogram-style — so
//! relative error is bounded (≤ 1/[`SUB_BUCKETS`] ≈ 12.5%) at any
//! magnitude while storage stays a fixed 512 counters.
//!
//! Two properties the callers rely on:
//!
//! * **Deterministic merge**: [`Histogram::merge`] is a bucket-wise
//!   add, so merging per-worker histograms in any order yields the
//!   same result — percentile reports are schedule-independent given
//!   the same samples.
//! * **Conservative percentiles**: [`Histogram::percentile`] returns
//!   the *upper bound* of the bucket containing the requested rank, so
//!   a reported p99 is never below the true p99.

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 8;

/// Number of octaves covered (`u64` values up to `2^64 - 1`).
const OCTAVES: usize = 64;

/// Total bucket count.
const BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// A fixed-size log-bucketed histogram of `u64` samples (latencies in
/// microseconds, queue depths, batch sizes — any non-negative metric).
///
/// # Examples
///
/// ```
/// use rip_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100u64, 200, 300, 400, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(50.0) >= 300);
/// assert!(h.percentile(99.0) >= 1000);
/// assert_eq!(h.min(), 100);
/// assert_eq!(h.max(), 1000);
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Box::new([0; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `value`: octave = position of the highest
    /// set bit, sub-bucket = the next `log2(SUB_BUCKETS)` bits below it.
    fn bucket_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            // Small values are exact: one bucket per integer.
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as usize;
        let sub_bits = SUB_BUCKETS.trailing_zeros() as usize;
        let sub = ((value >> (octave - sub_bits)) as usize) & (SUB_BUCKETS - 1);
        octave * SUB_BUCKETS + sub
    }

    /// The largest value mapping to `bucket` (the conservative
    /// per-bucket representative used by [`Histogram::percentile`]).
    fn bucket_upper_bound(bucket: usize) -> u64 {
        if bucket < SUB_BUCKETS {
            return bucket as u64;
        }
        let octave = bucket / SUB_BUCKETS;
        let sub = (bucket % SUB_BUCKETS) as u64;
        let sub_bits = SUB_BUCKETS.trailing_zeros() as usize;
        let base = 1u64 << octave;
        let step = 1u64 << (octave - sub_bits);
        // Upper edge of the sub-bucket, inclusive.
        (base | (sub.wrapping_mul(step))).saturating_add(step - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` occurrences of `value` (bulk accounting).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket-wise addition of `other` into `self`. Associative and
    /// commutative, so per-worker histograms merge deterministically in
    /// any order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (0–100): the upper bound of the
    /// bucket holding the sample of rank `ceil(p/100 · count)`, clamped
    /// to the recorded maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper_bound(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.p50())
            .field("p95", &self.p95())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(Histogram::bucket_upper_bound(Histogram::bucket_of(v)), v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn buckets_are_monotone_and_bounded() {
        let mut values: Vec<u64> = (0..63)
            .flat_map(|exp| [0u64, 1, 3].map(|off| (1u64 << exp).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut previous = 0usize;
        for v in values {
            let b = Histogram::bucket_of(v);
            assert!(b >= previous, "bucket index regressed at {v}");
            assert!(b < BUCKETS);
            let ub = Histogram::bucket_upper_bound(b);
            assert!(ub >= v, "upper bound {ub} below value {v}");
            // Relative error bound: ub < v · (1 + 2/SUB_BUCKETS).
            assert!(
                (ub as f64) < (v as f64) * (1.0 + 2.0 / SUB_BUCKETS as f64) + 1.0,
                "bucket too wide at {v}: {ub}"
            );
            previous = b;
        }
    }

    #[test]
    fn percentiles_are_ordered_and_conservative() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        let p95 = h.p95();
        let p99 = h.p99();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= 500, "p50 {p50} below true median");
        assert!(p99 >= 990, "p99 {p99} below true p99");
        assert!(p99 <= h.max());
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn merge_is_order_independent() {
        let samples: Vec<u64> = (0..500).map(|i| (i * 7919) % 100_000).collect();
        let mut whole = Histogram::new();
        for &s in &samples {
            whole.record(s);
        }
        // Split across three shards, merge in two different orders.
        let mut shards = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &s) in samples.iter().enumerate() {
            shards[i % 3].record(s);
        }
        let mut ab = Histogram::new();
        ab.merge(&shards[0]);
        ab.merge(&shards[1]);
        ab.merge(&shards[2]);
        let mut ba = Histogram::new();
        ba.merge(&shards[2]);
        ba.merge(&shards[0]);
        ba.merge(&shards[1]);
        for h in [&ab, &ba] {
            assert_eq!(h.count(), whole.count());
            assert_eq!(h.sum(), whole.sum());
            assert_eq!(h.min(), whole.min());
            assert_eq!(h.max(), whole.max());
            for p in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
                assert_eq!(h.percentile(p), whole.percentile(p), "p{p} diverged");
            }
        }
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        bulk.record_n(4242, 17);
        let mut repeated = Histogram::new();
        for _ in 0..17 {
            repeated.record(4242);
        }
        assert_eq!(bulk.count(), repeated.count());
        assert_eq!(bulk.sum(), repeated.sum());
        assert_eq!(bulk.p50(), repeated.p50());
        bulk.record_n(1, 0);
        assert_eq!(bulk.count(), 17, "record_n(_, 0) must be a no-op");
    }

    #[test]
    fn single_sample_percentiles_cover_it() {
        let mut h = Histogram::new();
        h.record(123_456);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 123_456);
        }
        assert_eq!(h.mean(), 123_456.0);
    }
}
