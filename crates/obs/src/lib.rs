//! rip-obs: deterministic tracing & metrics for the simulator stack.
//!
//! One telemetry spine for every layer — the experiment executor
//! (`rip-exec`), the cycle simulator (`rip-gpusim`), the predictor
//! (`rip-core`) and the benchmark harness (`rip-bench`) — built from
//! four pieces:
//!
//! - [`CounterRegistry`]: cheap atomic counters addressable by dotted
//!   path (`exec.cache.hit`, `gpusim.dram.access`,
//!   `predictor.verified`).
//! - [`Span`]: scoped timers over a pluggable [`Clock`] (wall-clock
//!   for humans, logical ticks for snapshot-stable output).
//! - [`EventLog`]: a bounded structured event log replacing raw
//!   `eprintln!` diagnostics — events keep their exact stderr text, so
//!   the human-facing output (and everything that greps it) is
//!   unchanged.
//! - [`TraceSink`]: a chrome://tracing-compatible JSONL exporter with
//!   deterministic event ordering.
//!
//! **The observability contract**: with tracing disabled, nothing here
//! writes to stdout or changes any experiment output (counters still
//! count — they are atomics — but only stderr and explicit exports
//! ever render them); with tracing enabled, two runs of the same
//! workload at different `--jobs` counts produce identical counter
//! totals and identical traces once wall-time fields are stripped.
//! `rip-testkit` and `tests/exec_determinism.rs` machine-check both
//! halves.
//!
//! # Examples
//!
//! ```
//! use rip_obs::{ClockMode, Obs};
//!
//! let obs = Obs::new(ClockMode::Logical);
//! obs.trace().enable();
//! obs.add("exec.cache.hit", 2);
//! {
//!     let _span = obs.span("exec", "build:SB").arg("case", "SB_tiny");
//! }
//! obs.event("exec.cache", "artifact_hit")
//!     .arg("case", "SB_tiny")
//!     .emit();
//! assert_eq!(obs.get("exec.cache.hit"), 2);
//! let trace = obs.export_trace_jsonl();
//! assert_eq!(trace.lines().count(), 3); // span + event + counter
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod clock;
pub mod events;
pub mod hist;
pub mod registry;
pub mod span;
pub mod trace;

pub use clock::{Clock, ClockMode};
pub use events::{ArgValue, Event, EventLog};
pub use hist::Histogram;
pub use registry::{Counter, CounterRegistry};
pub use span::Span;
pub use trace::{TraceEvent, TraceSink};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Capacity of the bounded event log.
const EVENT_LOG_CAPACITY: usize = 4096;

static NEXT_TID: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread (0 = first thread observed).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// One observability instance: a counter registry, an event log, a
/// trace sink and the clock that stamps them.
///
/// The process-wide default lives behind [`Obs::global`]; tests that
/// need isolated counters construct their own instance and thread it
/// through the `with_obs` builders of the layers under test.
#[derive(Debug)]
pub struct Obs {
    clock: Clock,
    registry: CounterRegistry,
    log: EventLog,
    trace: TraceSink,
}

impl Obs {
    /// A fresh instance with its clock in `mode` and tracing disabled.
    pub fn new(mode: ClockMode) -> Self {
        Obs {
            clock: Clock::new(mode),
            registry: CounterRegistry::new(),
            log: EventLog::new(EVENT_LOG_CAPACITY),
            trace: TraceSink::new(),
        }
    }

    /// The process-wide default instance (tracing off until something
    /// enables it). The clock mode honors `RIP_TRACE_CLOCK`
    /// (`wall`/`logical`) at first use, defaulting to wall time.
    pub fn global() -> &'static Arc<Obs> {
        static GLOBAL: OnceLock<Arc<Obs>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let mode = std::env::var("RIP_TRACE_CLOCK")
                .ok()
                .and_then(|v| ClockMode::parse(&v))
                .unwrap_or(ClockMode::Wall);
            Arc::new(Obs::new(mode))
        })
    }

    /// The clock stamping this instance's spans and events.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The clock's current reading (see [`Clock::now_us`]) — the one
    /// timestamp source layers above should use for latency and
    /// deadline arithmetic, so `RIP_TRACE_CLOCK=logical` runs make
    /// those decisions deterministically.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// The counter registry.
    pub fn registry(&self) -> &CounterRegistry {
        &self.registry
    }

    /// The bounded event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// The trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Resolves a counter handle (see [`CounterRegistry::counter`]).
    pub fn counter(&self, path: &str) -> Counter {
        self.registry.counter(path)
    }

    /// Adds `n` to the counter at `path`.
    pub fn add(&self, path: &str, n: u64) {
        self.registry.add(path, n);
    }

    /// The counter total at `path`.
    pub fn get(&self, path: &str) -> u64 {
        self.registry.get(path)
    }

    /// Opens a scoped span; it records on drop.
    pub fn span(&self, cat: &str, name: &str) -> Span<'_> {
        Span::new(self, cat, name)
    }

    /// Starts building a structured event (call
    /// [`EventBuilder::emit`] to record it).
    pub fn event(&self, cat: &str, name: &str) -> EventBuilder<'_> {
        EventBuilder {
            obs: self,
            event: Event {
                cat: cat.to_string(),
                name: name.to_string(),
                args: Vec::new(),
                stderr_text: None,
            },
        }
    }

    /// Records `event`: appends it to the bounded log, prints its
    /// stderr text verbatim when present, and forwards the structured
    /// part to the trace as an instant event.
    pub fn emit(&self, event: Event) {
        if let Some(text) = &event.stderr_text {
            eprintln!("{text}");
        }
        self.trace.record(TraceEvent {
            ph: 'i',
            cat: event.cat.clone(),
            name: event.name.clone(),
            ts_us: self.clock.now_us(),
            dur_us: None,
            tid: current_tid(),
            args: event.args.clone(),
        });
        self.log.push(event);
    }

    /// Per-span latency histograms aggregated from the recorded trace:
    /// every complete (`ph: 'X'`) span grouped by `cat:name`, sorted by
    /// that key. Empty until tracing is enabled — spans are only
    /// retained by the sink.
    pub fn span_latencies(&self) -> Vec<(String, Histogram)> {
        let mut groups: std::collections::BTreeMap<String, Histogram> =
            std::collections::BTreeMap::new();
        for event in self.trace.sorted_events() {
            if event.ph != 'X' {
                continue;
            }
            let key = format!("{}:{}", event.cat, event.name);
            groups
                .entry(key)
                .or_default()
                .record(event.dur_us.unwrap_or(0));
        }
        groups.into_iter().collect()
    }

    /// Renders [`Obs::span_latencies`] as an aligned table of per-span
    /// latency percentiles (count, p50/p95/p99, max — in the clock's
    /// microsecond units). Returns an empty string when no spans were
    /// recorded, so callers can append it to a summary unconditionally.
    pub fn span_latency_summary(&self) -> String {
        let groups = self.span_latencies();
        if groups.is_empty() {
            return String::new();
        }
        let width = groups.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
            "span", "count", "p50_us", "p95_us", "p99_us", "max_us"
        ));
        for (key, hist) in &groups {
            out.push_str(&format!(
                "{key:<width$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                hist.count(),
                hist.p50(),
                hist.p95(),
                hist.p99(),
                hist.max(),
            ));
        }
        out
    }

    /// Exports the trace as JSONL: all recorded events in
    /// deterministic order, followed by one `ph: "C"` counter event per
    /// registered counter (final totals, sorted by path).
    pub fn export_trace_jsonl(&self) -> String {
        let ts = self.clock.now_us();
        let counters = self
            .registry
            .snapshot()
            .into_iter()
            .map(|(path, value)| TraceEvent {
                ph: 'C',
                cat: "counter".to_string(),
                name: path,
                ts_us: ts,
                dur_us: None,
                tid: 0,
                args: vec![("value".to_string(), ArgValue::U64(value))],
            });
        self.trace.export_jsonl(counters)
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(ClockMode::Wall)
    }
}

/// Builder returned by [`Obs::event`].
#[derive(Debug)]
pub struct EventBuilder<'a> {
    obs: &'a Obs,
    event: Event,
}

impl EventBuilder<'_> {
    /// Attaches a string argument.
    pub fn arg(mut self, key: &str, value: impl Into<String>) -> Self {
        self.event
            .args
            .push((key.to_string(), ArgValue::Str(value.into())));
        self
    }

    /// Attaches a numeric argument.
    pub fn arg_u64(mut self, key: &str, value: u64) -> Self {
        self.event
            .args
            .push((key.to_string(), ArgValue::U64(value)));
        self
    }

    /// Sets the exact stderr line this event prints when emitted.
    pub fn stderr(mut self, text: impl Into<String>) -> Self {
        self.event.stderr_text = Some(text.into());
        self
    }

    /// Records the event.
    pub fn emit(self) {
        self.obs.emit(self.event);
    }
}

/// Writes the trace of an [`Obs`] instance to a file when dropped (or
/// earlier via [`TraceFileGuard::flush`]) — exactly once either way.
///
/// Constructing the guard enables tracing on the instance, so holding
/// one for the lifetime of a run is the whole `--trace <path>` /
/// `RIP_TRACE` implementation.
#[derive(Debug)]
pub struct TraceFileGuard {
    obs: Arc<Obs>,
    path: PathBuf,
    written: AtomicBool,
}

impl TraceFileGuard {
    /// Enables tracing on `obs` and arranges for the trace to be
    /// written to `path`.
    pub fn new(obs: Arc<Obs>, path: impl Into<PathBuf>) -> Self {
        obs.trace().enable();
        TraceFileGuard {
            obs,
            path: path.into(),
            written: AtomicBool::new(false),
        }
    }

    /// Where the trace will be written.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Writes the trace now (idempotent; later calls and the eventual
    /// drop are no-ops). Reports IO failures on stderr rather than
    /// panicking — telemetry must never take a run down.
    pub fn flush(&self) {
        if self.written.swap(true, Ordering::SeqCst) {
            return;
        }
        let jsonl = self.obs.export_trace_jsonl();
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        match std::fs::write(&self.path, jsonl) {
            Ok(()) => eprintln!("[rip-obs] trace written to {}", self.path.display()),
            Err(e) => eprintln!("[rip-obs] cannot write trace {}: {e}", self.path.display()),
        }
    }
}

impl Drop for TraceFileGuard {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_logs_and_traces() {
        let obs = Obs::new(ClockMode::Logical);
        obs.trace().enable();
        obs.event("exec.cache", "quarantine")
            .arg("path", "x.bvh")
            .arg_u64("n", 1)
            .emit();
        assert_eq!(obs.log().recent().len(), 1);
        let events = obs.trace().sorted_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ph, 'i');
        assert_eq!(events[0].cat, "exec.cache");
    }

    #[test]
    fn export_appends_counter_events() {
        let obs = Obs::new(ClockMode::Logical);
        obs.trace().enable();
        obs.add("b.second", 2);
        obs.add("a.first", 1);
        let jsonl = obs.export_trace_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"a.first\"") && lines[0].contains("\"ph\":\"C\""));
        assert!(lines[1].contains("\"b.second\""));
        assert!(lines[0].contains("\"value\":1"));
    }

    #[test]
    fn counters_count_even_with_tracing_disabled() {
        let obs = Obs::new(ClockMode::Wall);
        obs.add("quiet.counter", 5);
        assert_eq!(obs.get("quiet.counter"), 5);
        assert!(!obs.trace().is_enabled());
    }

    #[test]
    fn trace_file_guard_writes_once() {
        let path = std::env::temp_dir().join(format!("rip-obs-guard-{}.jsonl", std::process::id()));
        let obs = Arc::new(Obs::new(ClockMode::Logical));
        let guard = TraceFileGuard::new(Arc::clone(&obs), &path);
        assert!(obs.trace().is_enabled());
        obs.event("t", "once").emit();
        guard.flush();
        let first = std::fs::read_to_string(&path).unwrap();
        obs.event("t", "after_flush").emit();
        drop(guard);
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "drop after flush must not rewrite");
        assert!(first.contains("\"once\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn span_latency_summary_groups_by_cat_and_name() {
        let obs = Obs::new(ClockMode::Logical);
        obs.trace().enable();
        for _ in 0..3 {
            let _span = obs.span("exec.pool", "map");
        }
        {
            let _span = obs.span("exec.cache", "build");
        }
        obs.event("exec.cache", "artifact_hit").emit(); // not a span
        let groups = obs.span_latencies();
        let keys: Vec<&str> = groups.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["exec.cache:build", "exec.pool:map"]);
        assert_eq!(groups[1].1.count(), 3);
        let table = obs.span_latency_summary();
        assert!(table.contains("p99_us"));
        assert!(table.contains("exec.pool:map"));
    }

    #[test]
    fn span_latency_summary_is_empty_without_tracing() {
        let obs = Obs::new(ClockMode::Wall);
        {
            let _span = obs.span("quiet", "span");
        }
        assert!(obs.span_latency_summary().is_empty());
    }

    #[test]
    fn global_instance_is_shared() {
        let a = Arc::clone(Obs::global());
        let b = Arc::clone(Obs::global());
        assert!(Arc::ptr_eq(&a, &b));
    }
}
