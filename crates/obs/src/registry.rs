//! Hierarchical counter registry.
//!
//! Counters are addressed by dotted paths (`exec.cache.hit`,
//! `gpusim.dram.access`, `predictor.verified`). Each path maps to one
//! process-shared atomic, so incrementing from worker threads is cheap
//! and never requires coordination beyond the atomic itself; the
//! registry lock is only taken to *resolve* a path, and hot call sites
//! can hold on to the returned [`Counter`] handle to skip even that.
//!
//! Counters are monotonic `u64` totals. Snapshots come back as a sorted
//! map, so rendering a snapshot — or diffing two of them — is
//! deterministic regardless of the thread schedule that produced the
//! counts.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A handle to one registered counter. Cloning shares the same atomic.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Whether `path` is a well-formed dotted counter path: non-empty
/// `[a-z0-9_]` segments separated by single dots.
pub fn is_valid_path(path: &str) -> bool {
    !path.is_empty()
        && path.split('.').all(|segment| {
            !segment.is_empty()
                && segment
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}

/// A registry of named monotonic counters.
///
/// # Examples
///
/// ```
/// use rip_obs::CounterRegistry;
///
/// let reg = CounterRegistry::new();
/// reg.add("exec.cache.hit", 3);
/// let hit = reg.counter("exec.cache.hit");
/// hit.inc();
/// assert_eq!(reg.get("exec.cache.hit"), 4);
/// assert_eq!(reg.get("never.touched"), 0);
/// ```
#[derive(Debug, Default)]
pub struct CounterRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        CounterRegistry::default()
    }

    /// Resolves (registering on first use) the counter at `path`.
    ///
    /// # Panics
    ///
    /// Panics when `path` is not a well-formed dotted path — counter
    /// names are compile-time constants in practice, so a malformed one
    /// is a programming error, not a runtime condition.
    pub fn counter(&self, path: &str) -> Counter {
        assert!(is_valid_path(path), "malformed counter path '{path}'");
        let mut counters = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        Counter(Arc::clone(
            counters
                .entry(path.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Adds `n` to the counter at `path` (registering it on first use).
    pub fn add(&self, path: &str, n: u64) {
        self.counter(path).add(n);
    }

    /// The current total at `path` (0 when never registered).
    pub fn get(&self, path: &str) -> u64 {
        let counters = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        counters.get(path).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// A sorted snapshot of every registered counter.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let counters = self.counters.lock().unwrap_or_else(|p| p.into_inner());
        counters
            .iter()
            .map(|(path, c)| (path.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Renders the snapshot as an aligned two-column table, sorted by
    /// path. Zero-valued counters are included: a zero that should have
    /// counted is exactly what a metrics table exists to surface.
    pub fn summary_table(&self) -> String {
        let snapshot = self.snapshot();
        if snapshot.is_empty() {
            return String::from("(no counters registered)\n");
        }
        let width = snapshot.keys().map(|p| p.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (path, value) in &snapshot {
            out.push_str(&format!("{path:<width$}  {value}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let reg = CounterRegistry::new();
        let a = reg.counter("a.b.c");
        let b = reg.counter("a.b.c");
        a.add(2);
        b.inc();
        assert_eq!(reg.get("a.b.c"), 3);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let reg = CounterRegistry::new();
        reg.add("z.last", 1);
        reg.add("a.first", 2);
        reg.counter("m.zero");
        let snap = reg.snapshot();
        let paths: Vec<&str> = snap.keys().map(String::as_str).collect();
        assert_eq!(paths, vec!["a.first", "m.zero", "z.last"]);
        assert_eq!(snap["m.zero"], 0);
    }

    #[test]
    fn summary_table_aligns_paths() {
        let reg = CounterRegistry::new();
        reg.add("short", 7);
        reg.add("much.longer.path", 42);
        let table = reg.summary_table();
        assert!(table.contains("much.longer.path  42"));
        assert!(table.contains("short             7"));
    }

    #[test]
    fn path_validation() {
        assert!(is_valid_path("exec.cache.hit"));
        assert!(is_valid_path("a_1.b_2"));
        for bad in ["", ".", "a..b", "A.b", "a.b ", "a b", "a.", ".a"] {
            assert!(!is_valid_path(bad), "'{bad}' should be rejected");
        }
    }

    #[test]
    #[should_panic(expected = "malformed counter path")]
    fn malformed_path_panics() {
        CounterRegistry::new().counter("Not.Valid");
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let reg = CounterRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let c = reg.counter("hot.path");
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.get("hot.path"), 4000);
    }
}
