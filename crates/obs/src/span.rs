//! Scoped span timers.

use crate::events::ArgValue;
use crate::trace::TraceEvent;
use crate::Obs;

/// A scoped timer: created via [`Obs::span`], it measures until drop
/// and records one complete (`ph: "X"`) trace event.
///
/// Spans are observation-only — dropping one never touches stdout, so
/// wrapping deterministic output paths in spans cannot perturb them.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a Obs,
    cat: String,
    name: String,
    start_us: u64,
    args: Vec<(String, ArgValue)>,
}

impl<'a> Span<'a> {
    pub(crate) fn new(obs: &'a Obs, cat: &str, name: &str) -> Self {
        Span {
            start_us: obs.clock().now_us(),
            obs,
            cat: cat.to_string(),
            name: name.to_string(),
            args: Vec::new(),
        }
    }

    /// Attaches a string argument (must be schedule-independent; see
    /// the [`events`](crate::events) determinism contract).
    pub fn arg(mut self, key: &str, value: impl Into<String>) -> Self {
        self.args
            .push((key.to_string(), ArgValue::Str(value.into())));
        self
    }

    /// Attaches a numeric argument.
    pub fn arg_u64(mut self, key: &str, value: u64) -> Self {
        self.args.push((key.to_string(), ArgValue::U64(value)));
        self
    }

    /// Adds an argument after creation (for outcomes known only at the
    /// end of the measured region).
    pub fn push_arg(&mut self, key: &str, value: impl Into<String>) {
        self.args
            .push((key.to_string(), ArgValue::Str(value.into())));
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.obs.clock().now_us();
        self.obs.trace().record(TraceEvent {
            ph: 'X',
            cat: std::mem::take(&mut self.cat),
            name: std::mem::take(&mut self.name),
            ts_us: self.start_us,
            dur_us: Some(end.saturating_sub(self.start_us)),
            tid: crate::current_tid(),
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::{ClockMode, Obs};

    #[test]
    fn span_records_a_complete_event() {
        let obs = Obs::new(ClockMode::Logical);
        obs.trace().enable();
        {
            let _span = obs.span("test", "unit").arg("case", "SB").arg_u64("n", 2);
        }
        let events = obs.trace().sorted_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ph, 'X');
        assert_eq!(events[0].name, "unit");
        assert_eq!(events[0].cat, "test");
        assert!(events[0].dur_us.is_some());
        assert_eq!(events[0].args.len(), 2);
    }

    #[test]
    fn span_without_tracing_is_silent() {
        let obs = Obs::new(ClockMode::Wall);
        {
            let _span = obs.span("test", "unit");
        }
        assert!(obs.trace().sorted_events().is_empty());
    }
}
