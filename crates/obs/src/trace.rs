//! chrome://tracing-compatible JSONL trace sink.
//!
//! Every recorded [`TraceEvent`] becomes one JSON object per line
//! (Chrome's "JSON Array Format" minus the surrounding brackets, which
//! `chrome://tracing` and Perfetto both accept line-by-line). Each line
//! carries the four keys the viewers require — `name`, `ph`, `ts`,
//! `pid` — plus `tid`, `cat`, optional `dur`, and an `args` object.
//!
//! **Export order is deterministic.** Worker threads record events in
//! completion order, which varies run to run; the exporter sorts by a
//! key that excludes every schedule-dependent field (`ts`, `dur`,
//! `tid`, and `*_ms`/`*_us` args), so two runs of the same workload
//! yield byte-identical traces once those fields are stripped — the
//! contract `tests/exec_determinism.rs` enforces across `--jobs`
//! counts.

use crate::events::ArgValue;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default cap on retained trace events.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 20;

/// Argument keys with this suffix hold wall-clock measurements and are
/// excluded from deterministic ordering (and stripped by trace
/// normalization in `rip-testkit`).
pub fn is_wall_time_key(key: &str) -> bool {
    key.ends_with("_ms") || key.ends_with("_us")
}

/// One trace event (`ph` is the Chrome phase: `X` complete, `i`
/// instant, `C` counter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Chrome phase character.
    pub ph: char,
    /// Event category.
    pub cat: String,
    /// Event name.
    pub name: String,
    /// Timestamp (microseconds or logical ticks, per the clock mode).
    pub ts_us: u64,
    /// Duration for complete (`X`) events.
    pub dur_us: Option<u64>,
    /// Small per-thread id (0 = first thread observed).
    pub tid: u64,
    /// Structured arguments.
    pub args: Vec<(String, ArgValue)>,
}

impl TraceEvent {
    /// The schedule-independent ordering key: everything except `ts`,
    /// `dur`, `tid` and wall-time args.
    fn sort_key(&self) -> (String, String, char, String) {
        let mut args = String::new();
        for (k, v) in &self.args {
            if is_wall_time_key(k) {
                continue;
            }
            args.push_str(k);
            args.push('=');
            args.push_str(&v.to_string());
            args.push('\u{1f}');
        }
        (self.cat.clone(), self.name.clone(), self.ph, args)
    }

    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self, pid: u32) -> String {
        let mut line = String::with_capacity(96);
        line.push_str("{\"name\":");
        push_json_string(&mut line, &self.name);
        line.push_str(",\"cat\":");
        push_json_string(&mut line, &self.cat);
        line.push_str(&format!(",\"ph\":\"{}\",\"ts\":{}", self.ph, self.ts_us));
        if let Some(dur) = self.dur_us {
            line.push_str(&format!(",\"dur\":{dur}"));
        }
        line.push_str(&format!(",\"pid\":{pid},\"tid\":{}", self.tid));
        line.push_str(",\"args\":{");
        for (i, (k, v)) in self.args.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            push_json_string(&mut line, k);
            line.push(':');
            match v {
                ArgValue::U64(n) => line.push_str(&n.to_string()),
                ArgValue::Str(s) => push_json_string(&mut line, s),
            }
        }
        line.push_str("}}");
        line
    }
}

/// Appends `s` as a JSON string literal (quoted, escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A bounded collector of trace events, disabled (and nearly free)
/// until [`TraceSink::enable`] is called.
#[derive(Debug)]
pub struct TraceSink {
    enabled: AtomicBool,
    capacity: usize,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl TraceSink {
    /// A disabled sink with the default capacity.
    pub fn new() -> Self {
        TraceSink::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A disabled sink retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Whether the sink is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records `event` when enabled; excess events past the capacity
    /// are counted in [`TraceSink::dropped`] instead of retained.
    pub fn record(&self, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        if events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(event);
    }

    /// Events discarded because the sink was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The recorded events, sorted by the schedule-independent key.
    pub fn sorted_events(&self) -> Vec<TraceEvent> {
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        events.sort_by_key(|a| a.sort_key());
        events
    }

    /// Renders every recorded event (plus any `extra` events appended
    /// after sorting, e.g. final counter values) as JSONL.
    pub fn export_jsonl(&self, extra: impl IntoIterator<Item = TraceEvent>) -> String {
        let pid = std::process::id();
        let mut out = String::new();
        for event in self.sorted_events().into_iter().chain(extra) {
            out.push_str(&event.to_json(pid));
            out.push('\n');
        }
        out
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, ts: u64, tid: u64) -> TraceEvent {
        TraceEvent {
            ph: 'X',
            cat: "test".into(),
            name: name.into(),
            ts_us: ts,
            dur_us: Some(5),
            tid,
            args: vec![
                ("case".into(), ArgValue::Str("SB".into())),
                ("built_ms".into(), ArgValue::U64(ts)),
            ],
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::new();
        sink.record(event("a", 1, 0));
        assert!(sink.sorted_events().is_empty());
    }

    #[test]
    fn export_order_ignores_timestamps_and_threads() {
        let run = |order: &[(&str, u64, u64)]| {
            let sink = TraceSink::new();
            sink.enable();
            for &(name, ts, tid) in order {
                sink.record(event(name, ts, tid));
            }
            sink.sorted_events()
                .into_iter()
                .map(|e| e.name)
                .collect::<Vec<_>>()
        };
        let a = run(&[("beta", 9, 1), ("alpha", 3, 0)]);
        let b = run(&[("alpha", 70, 2), ("beta", 1, 5)]);
        assert_eq!(a, b);
        assert_eq!(a, vec!["alpha", "beta"]);
    }

    #[test]
    fn json_lines_escape_and_carry_required_keys() {
        let sink = TraceSink::new();
        sink.enable();
        sink.record(TraceEvent {
            ph: 'i',
            cat: "exec.cache".into(),
            name: "quote\"and\\slash\n".into(),
            ts_us: 7,
            dur_us: None,
            tid: 0,
            args: vec![("n".into(), ArgValue::U64(3))],
        });
        let line = sink.export_jsonl(None);
        assert!(line.contains("\\\"and\\\\slash\\n"));
        for key in ["\"name\":", "\"ph\":", "\"ts\":", "\"pid\":", "\"tid\":"] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
        assert!(!line.contains("\"dur\""));
    }

    #[test]
    fn capacity_overflow_is_counted_not_grown() {
        let sink = TraceSink::with_capacity(2);
        sink.enable();
        for i in 0..5 {
            sink.record(event("e", i, 0));
        }
        assert_eq!(sink.sorted_events().len(), 2);
        assert_eq!(sink.dropped(), 3);
    }

    #[test]
    fn wall_time_keys_are_recognized() {
        assert!(is_wall_time_key("built_ms"));
        assert!(is_wall_time_key("load_us"));
        assert!(!is_wall_time_key("attempts"));
        assert!(!is_wall_time_key("msgs"));
    }
}
