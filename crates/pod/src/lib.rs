//! Plain-old-data foundation for the RIPA v2 zero-copy artifact format.
//!
//! Artifacts used to be length-prefixed streams decoded element by
//! element into fresh `Vec`s. RIPA v2 instead lays every hot array out
//! as a flat `#[repr(C)]` section that can be *cast* into a typed slice
//! after validation — whether the backing bytes live in an owned
//! aligned buffer or a page mapping. This crate is the dependency root
//! for that: it knows nothing about scenes or BVHs, only about
//!
//! * [`Pod`] — the marker trait for types whose every bit pattern is a
//!   valid value and whose layout has no padding, plus the **checked**
//!   cast helpers ([`bytes_of_slice`], [`try_cast_slice`]) that refuse
//!   misaligned or mis-sized views instead of exhibiting UB;
//! * [`Bytes`] / [`ByteSource`] / [`AlignedBuf`] — a cheaply cloneable
//!   shared view over an immutable byte region with a guaranteed base
//!   alignment, so typed casts of section payloads are always legal;
//! * [`PodSlice`] / [`PodBuf`] — a validated typed view over [`Bytes`]
//!   and a copy-on-write container (`Owned(Vec<T>)` | shared view) that
//!   lets mesh/BVH types keep their slice-based APIs while borrowing
//!   artifact memory;
//! * [`ripa`] — the container format itself (header, section table,
//!   per-section FNV checksums).
//!
//! Everything here is safe code built on two `unsafe` primitives (the
//! slice casts in [`bytes_of_slice`] and [`try_cast_slice`]) whose
//! preconditions are discharged by the `Pod` contract plus explicit
//! runtime size/alignment checks.

pub mod ripa;

use std::sync::Arc;

// ---------------------------------------------------------------------------
// Pod trait + checked casts
// ---------------------------------------------------------------------------

/// Marker for plain-old-data types that can be viewed as raw bytes and
/// reconstructed from arbitrary bytes.
///
/// # Safety
///
/// Implementors must guarantee all of:
///
/// * every bit pattern of `size_of::<Self>()` bytes is a valid value
///   (no `bool`, no enums with niches, no references/pointers);
/// * the layout is `#[repr(C)]` (or a primitive) with **no padding
///   bytes** — `size_of::<Self>()` equals the sum of the field sizes;
/// * the type has no interior mutability and no drop glue.
///
/// Use [`impl_pod!`] rather than a bare `unsafe impl`: it pins the
/// expected size and alignment in a compile-time assertion, so a field
/// edit that introduces padding fails the build instead of corrupting
/// artifacts.
pub unsafe trait Pod: Copy + 'static {}

macro_rules! impl_pod_primitive {
    ($($t:ty),* $(,)?) => {
        $(unsafe impl Pod for $t {})*
    };
}

impl_pod_primitive!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

// Arrays of pod are pod: no padding is ever inserted between elements.
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Implements [`Pod`] for a `#[repr(C)]` struct while pinning its exact
/// size and alignment at compile time.
///
/// ```
/// #[repr(C)]
/// #[derive(Clone, Copy)]
/// struct P { x: f32, y: f32 }
/// rip_pod::impl_pod!(P, size = 8, align = 4);
/// ```
#[macro_export]
macro_rules! impl_pod {
    ($t:ty, size = $size:expr, align = $align:expr) => {
        const _: () = {
            assert!(
                ::std::mem::size_of::<$t>() == $size,
                concat!("padding or layout drift in ", stringify!($t))
            );
            assert!(::std::mem::align_of::<$t>() == $align);
        };
        unsafe impl $crate::Pod for $t {}
    };
}

/// Why a checked cast was refused. Decoders surface this as a corrupt-
/// artifact diagnostic; it is never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CastError {
    /// Byte length is not a multiple of the element size.
    SizeMismatch {
        /// Length of the byte region.
        len: usize,
        /// Element size it failed to divide into.
        elem: usize,
    },
    /// Base pointer is not aligned for the element type.
    Misaligned {
        /// Required alignment.
        align: usize,
    },
}

impl std::fmt::Display for CastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CastError::SizeMismatch { len, elem } => {
                write!(
                    f,
                    "{len} bytes is not a whole number of {elem}-byte records"
                )
            }
            CastError::Misaligned { align } => {
                write!(f, "byte region is not {align}-byte aligned")
            }
        }
    }
}

impl std::error::Error for CastError {}

/// The bytes of one pod value.
pub fn bytes_of<T: Pod>(value: &T) -> &[u8] {
    bytes_of_slice(std::slice::from_ref(value))
}

/// The bytes of a pod slice.
pub fn bytes_of_slice<T: Pod>(slice: &[T]) -> &[u8] {
    let len = std::mem::size_of_val(slice);
    // SAFETY: `T: Pod` guarantees no padding (every byte of the slice is
    // initialized) and no interior mutability; u8 has alignment 1, and
    // the length in bytes is exact by construction.
    unsafe { std::slice::from_raw_parts(slice.as_ptr().cast::<u8>(), len) }
}

/// Views a byte region as a pod slice, refusing misaligned or
/// non-whole-record regions.
pub fn try_cast_slice<T: Pod>(bytes: &[u8]) -> Result<&[T], CastError> {
    let elem = std::mem::size_of::<T>();
    assert!(elem > 0, "zero-sized pod records are meaningless");
    if !bytes.len().is_multiple_of(elem) {
        return Err(CastError::SizeMismatch {
            len: bytes.len(),
            elem,
        });
    }
    let align = std::mem::align_of::<T>();
    if !(bytes.as_ptr() as usize).is_multiple_of(align) {
        return Err(CastError::Misaligned { align });
    }
    // SAFETY: the pointer is aligned for T (checked above), the length
    // is a whole number of T records (checked above), and `T: Pod`
    // makes every bit pattern a valid T. The lifetime is inherited from
    // the input borrow.
    Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / elem) })
}

/// Copies one pod record out of a byte region (alignment-free: the
/// bytes are memcpy'd, not borrowed).
pub fn read_unaligned<T: Pod>(bytes: &[u8]) -> Result<T, CastError> {
    if bytes.len() != std::mem::size_of::<T>() {
        return Err(CastError::SizeMismatch {
            len: bytes.len(),
            elem: std::mem::size_of::<T>(),
        });
    }
    let mut value = std::mem::MaybeUninit::<T>::uninit();
    // SAFETY: source and destination are exactly size_of::<T>() bytes
    // and do not overlap; `T: Pod` makes any byte pattern valid.
    unsafe {
        std::ptr::copy_nonoverlapping(
            bytes.as_ptr(),
            value.as_mut_ptr().cast::<u8>(),
            std::mem::size_of::<T>(),
        );
        Ok(value.assume_init())
    }
}

// ---------------------------------------------------------------------------
// FNV-1a
// ---------------------------------------------------------------------------

/// The FNV-1a 64 offset basis (the hash of the empty string).
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// 64-bit FNV-1a over `bytes` — the header/table checksum of [`ripa`]
/// and the digest primitive shared with the snapshot machinery. Bulk
/// section payloads use [`fnv1a_striped`] instead.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET_BASIS, bytes)
}

/// Continues an FNV-1a 64 hash over more bytes, so discontiguous
/// regions (e.g. a header plus its section table) hash as one stream.
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Striped FNV-1a 64 — the bulk-payload checksum of [`ripa`].
///
/// Plain FNV-1a is one dependent multiply per *byte*, which caps it
/// near 0.7 GB/s and makes the checksum, not the decode, the cost of a
/// cold artifact load. This variant keeps FNV's mixing step but feeds
/// it whole 8-byte words across four independent lanes (one 32-byte
/// block per round), then folds the lane digests, the byte-wise tail,
/// and the total length into a single 64-bit result.
///
/// Detection strength for the corruption this guards against is
/// unchanged: every mixing step (`xor` then multiply by the odd FNV
/// prime) is bijective in its input, so any single-bit change in any
/// byte — block word or tail — deterministically changes the digest.
/// It is *not* byte-order-free and not FNV-compatible; it is a distinct
/// function that only [`ripa`] section checksums use.
pub fn fnv1a_striped(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    // Distinct per-lane bases, so lanes cannot be swapped undetected.
    let mut lanes = [0u64; 4];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = (FNV_OFFSET_BASIS ^ (i as u64 + 1)).wrapping_mul(PRIME);
    }
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let word = u64::from_ne_bytes(block[i * 8..i * 8 + 8].try_into().expect("8-byte word"));
            *lane = (*lane ^ word).wrapping_mul(PRIME);
        }
    }
    let mut hash = FNV_OFFSET_BASIS ^ (bytes.len() as u64);
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(PRIME);
    }
    fnv1a_extend(hash, blocks.remainder())
}

// ---------------------------------------------------------------------------
// Shared byte regions
// ---------------------------------------------------------------------------

/// An immutable byte region that can back shared [`Bytes`] views.
///
/// Implementations must return the same bytes for the lifetime of the
/// value (artifact memory is immutable once mapped or read).
pub trait ByteSource: Send + Sync {
    /// The full region.
    fn bytes(&self) -> &[u8];
    /// Diagnostic name of the backing strategy (`"owned"`, `"mmap"`).
    fn backend(&self) -> &'static str {
        "owned"
    }
}

/// The base alignment every [`ByteSource`] must provide, and therefore
/// the maximum section alignment [`ripa`] accepts. `u64`-backed owned
/// buffers and page mappings both satisfy it.
pub const BASE_ALIGN: usize = 8;

/// An owned byte buffer with a guaranteed [`BASE_ALIGN`]-byte base
/// alignment (it is backed by `Vec<u64>`), so artifact bytes read from
/// disk can be cast into `f32`/`u32` sections without a realign copy.
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// A zeroed buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        AlignedBuf {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// A buffer holding a copy of `bytes`.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut buf = AlignedBuf::zeroed(bytes.len());
        buf.as_mut_slice().copy_from_slice(bytes);
        buf
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        &bytes_of_slice(&self.words)[..self.len]
    }

    /// Mutable access (used while filling the buffer from a reader).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        let len = self.len;
        let bytes = std::mem::size_of_val(self.words.as_slice());
        // SAFETY: u64 is Pod (no padding, no niches), so its buffer may
        // be viewed as bytes mutably; the region is uniquely borrowed
        // through &mut self and `len <= bytes` by construction.
        let all =
            unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), bytes) };
        &mut all[..len]
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl ByteSource for AlignedBuf {
    fn bytes(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedBuf")
            .field("len", &self.len)
            .finish()
    }
}

/// A cheaply cloneable view into a shared immutable byte region.
///
/// Cloning bumps an `Arc`; slicing adjusts offsets. All views keep the
/// backing [`ByteSource`] (owned buffer or page mapping) alive, which
/// is exactly the ownership story `Case` needs: the scene, the BVH and
/// every lease hold `Bytes` views into one mapping.
#[derive(Clone)]
pub struct Bytes {
    source: Arc<dyn ByteSource>,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// A view covering all of `source`.
    pub fn new(source: Arc<dyn ByteSource>) -> Self {
        let len = source.bytes().len();
        Bytes {
            source,
            offset: 0,
            len,
        }
    }

    /// A view over a private aligned copy of `bytes` — the convenience
    /// constructor for in-memory decode paths and tests.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes::new(Arc::new(AlignedBuf::copy_from(bytes)))
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.source.bytes()[self.offset..self.offset + self.len]
    }

    /// A sub-view. Panics if the range is out of bounds (callers
    /// validate ranges against parsed section tables first).
    pub fn slice(&self, start: usize, len: usize) -> Bytes {
        assert!(
            start <= self.len && len <= self.len - start,
            "slice {start}+{len} out of bounds of {} bytes",
            self.len
        );
        Bytes {
            source: Arc::clone(&self.source),
            offset: self.offset + start,
            len,
        }
    }

    /// Byte length of the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Diagnostic name of the backing strategy.
    pub fn backend(&self) -> &'static str {
        self.source.backend()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bytes")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .field("backend", &self.backend())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Typed views and copy-on-write buffers
// ---------------------------------------------------------------------------

/// A validated typed view over [`Bytes`]: alignment and whole-record
/// length were checked once at construction, so element access is a
/// plain slice index.
#[derive(Clone)]
pub struct PodSlice<T: Pod> {
    bytes: Bytes,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> PodSlice<T> {
    /// Wraps `bytes`, refusing misaligned or non-whole-record regions.
    pub fn new(bytes: Bytes) -> Result<Self, CastError> {
        // Validate eagerly so a bad view is impossible to construct;
        // as_slice re-derives the same cast from the kept Bytes.
        try_cast_slice::<T>(bytes.as_slice())?;
        Ok(PodSlice {
            bytes,
            _marker: std::marker::PhantomData,
        })
    }

    /// The typed elements.
    pub fn as_slice(&self) -> &[T] {
        // The constructor proved this cast valid, and the source is
        // immutable, so it cannot have become invalid since.
        try_cast_slice::<T>(self.bytes.as_slice()).expect("validated at construction")
    }

    /// Number of `T` records.
    pub fn len(&self) -> usize {
        self.bytes.len() / std::mem::size_of::<T>()
    }

    /// Whether the view holds no records.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl<T: Pod> std::ops::Deref for PodSlice<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for PodSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Copy-on-write pod storage: either an owned `Vec<T>` or a shared
/// view into artifact memory.
///
/// Containers (mesh buffers, BVH triangle order, wide-node arrays)
/// store this instead of `Vec<T>`; reads go through `Deref<[T]>`
/// unchanged, and the rare mutation paths (mesh authoring, BVH refit)
/// call [`PodBuf::to_mut`], which detaches a private copy on first
/// write.
pub enum PodBuf<T: Pod> {
    /// Privately owned elements.
    Owned(Vec<T>),
    /// A view borrowing shared artifact memory.
    Shared(PodSlice<T>),
}

impl<T: Pod> PodBuf<T> {
    /// The elements as a slice, whichever representation backs them.
    pub fn as_slice(&self) -> &[T] {
        match self {
            PodBuf::Owned(v) => v,
            PodBuf::Shared(s) => s.as_slice(),
        }
    }

    /// Mutable access, detaching a private copy if the storage is
    /// shared (copy-on-write).
    pub fn to_mut(&mut self) -> &mut Vec<T> {
        if let PodBuf::Shared(s) = self {
            *self = PodBuf::Owned(s.as_slice().to_vec());
        }
        match self {
            PodBuf::Owned(v) => v,
            PodBuf::Shared(_) => unreachable!("detached above"),
        }
    }

    /// Whether the storage borrows shared artifact memory.
    pub fn is_shared(&self) -> bool {
        matches!(self, PodBuf::Shared(_))
    }
}

impl<T: Pod> std::ops::Deref for PodBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for PodBuf<T> {
    fn from(v: Vec<T>) -> Self {
        PodBuf::Owned(v)
    }
}

impl<T: Pod> From<PodSlice<T>> for PodBuf<T> {
    fn from(s: PodSlice<T>) -> Self {
        PodBuf::Shared(s)
    }
}

impl<T: Pod> Default for PodBuf<T> {
    fn default() -> Self {
        PodBuf::Owned(Vec::new())
    }
}

impl<T: Pod> Clone for PodBuf<T> {
    fn clone(&self) -> Self {
        match self {
            PodBuf::Owned(v) => PodBuf::Owned(v.clone()),
            // Cloning a shared view stays shared — it is an Arc bump,
            // not a copy; mutation still detaches via to_mut.
            PodBuf::Shared(s) => PodBuf::Shared(s.clone()),
        }
    }
}

impl<T: Pod + PartialEq> PartialEq for PodBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for PodBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_round_trip() {
        let values: Vec<u32> = (0..16).collect();
        let bytes = bytes_of_slice(&values);
        assert_eq!(bytes.len(), 64);
        let back: &[u32] = try_cast_slice(bytes).unwrap();
        assert_eq!(back, values.as_slice());
    }

    #[test]
    fn cast_refuses_ragged_length() {
        let bytes = [0u8; 7];
        let err = try_cast_slice::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, CastError::SizeMismatch { len: 7, elem: 4 }));
    }

    #[test]
    fn cast_refuses_misalignment() {
        let buf = AlignedBuf::copy_from(&[0u8; 16]);
        let bytes = &buf.as_slice()[1..9];
        let err = try_cast_slice::<u64>(bytes).unwrap_err();
        assert_eq!(err, CastError::Misaligned { align: 8 });
    }

    #[test]
    fn aligned_buf_is_base_aligned() {
        for len in [0usize, 1, 7, 8, 9, 4096] {
            let buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.as_slice().len(), len);
            assert_eq!(buf.as_slice().as_ptr() as usize % BASE_ALIGN, 0);
        }
    }

    #[test]
    fn bytes_slicing_shares_one_source() {
        let bytes = Bytes::copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let tail = bytes.slice(4, 4);
        assert_eq!(tail.as_slice(), &[5, 6, 7, 8]);
        assert_eq!(tail.slice(1, 2).as_slice(), &[6, 7]);
    }

    #[test]
    fn pod_buf_copy_on_write() {
        let bytes = Bytes::copy_from_slice(bytes_of_slice(&[1u32, 2, 3, 4]));
        let mut buf: PodBuf<u32> = PodSlice::new(bytes).unwrap().into();
        assert!(buf.is_shared());
        let snapshot = buf.clone();
        buf.to_mut().push(5);
        assert!(!buf.is_shared(), "mutation must detach a private copy");
        assert_eq!(&buf[..], &[1, 2, 3, 4, 5]);
        assert_eq!(&snapshot[..], &[1, 2, 3, 4], "clone keeps the original");
    }

    #[test]
    fn fnv1a_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn striped_fnv_detects_every_single_bit_flip() {
        // Lengths spanning empty, tail-only, exact-block, and mixed
        // block+tail payloads; every single-bit corruption must change
        // the digest (the bijectivity argument in the doc, exercised).
        for len in [0usize, 1, 7, 8, 31, 32, 33, 64, 100] {
            let original: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(37)).collect();
            let digest = fnv1a_striped(&original);
            for at in 0..len {
                for bit in 0..8 {
                    let mut bad = original.clone();
                    bad[at] ^= 1 << bit;
                    assert_ne!(
                        fnv1a_striped(&bad),
                        digest,
                        "len {len}: flip of byte {at} bit {bit} went undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn striped_fnv_distinguishes_lengths_and_lane_swaps() {
        // Trailing zeros must not alias shorter payloads…
        assert_ne!(fnv1a_striped(&[0u8; 32]), fnv1a_striped(&[0u8; 40]));
        assert_ne!(fnv1a_striped(b""), fnv1a_striped(&[0u8]));
        // …and swapping two 8-byte words across lanes must be visible.
        let mut swapped = [0u8; 32];
        swapped[..8].copy_from_slice(&7u64.to_ne_bytes());
        let mut original = [0u8; 32];
        original[8..16].copy_from_slice(&7u64.to_ne_bytes());
        assert_ne!(fnv1a_striped(&swapped), fnv1a_striped(&original));
    }
}
