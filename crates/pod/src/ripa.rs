//! RIPA v2 — the zero-copy artifact container.
//!
//! One file is a 32-byte header, a section table, then the section
//! payloads, each padded to a 16-byte offset so every `#[repr(C)]`
//! record array can be cast in place:
//!
//! ```text
//! offset  size  field
//!  0       4    magic  "RIPA"
//!  4       4    container version (= 2)
//!  8       4    section count            <- faultinject::header_bomb target
//! 12       4    artifact kind (scene / bvh / wide — consumer-defined)
//! 16       8    total file length (must equal the actual byte count)
//! 24       4    endianness tag 0x01020304, written native
//! 28       4    low 32 bits of FNV-1a over bytes 0..28 + section table
//! ----- section table: 32 bytes per entry -----
//!  0       4    section id (consumer-defined, unique per file)
//!  4       4    record alignment (power of two, <= BASE_ALIGN)
//!  8       8    payload offset (canonical: previous end rounded to 16)
//! 16       8    payload length in bytes
//! 24       8    striped FNV-1a 64 checksum of the payload
//!               (see `fnv1a_striped` — word-parallel, bijective per bit)
//! ```
//!
//! All multi-byte fields are **native-endian**: the payloads are cast,
//! not parsed, so a file only makes sense on the byte order that wrote
//! it, and the tag at offset 24 rejects foreign-endian files up front.
//! Layout is canonical — offsets are exactly "previous end rounded up
//! to 16", inter-section padding must be zero, and the total length
//! must match the file size — so re-encoding a decoded artifact is
//! byte-stable and any truncation, extension, or moved section fails
//! validation before a single record is trusted.
//!
//! Parsing never panics and never allocates proportionally to
//! attacker-controlled counts: the section count is bounds-checked
//! against the actual file length (`header_bomb` writes `u32::MAX`
//! there) before the table is read.

use crate::{
    fnv1a_extend, fnv1a_striped, read_unaligned, Bytes, Pod, PodSlice, BASE_ALIGN, FNV_OFFSET_BASIS,
};

/// File magic, `b"RIPA"`.
pub const MAGIC: [u8; 4] = *b"RIPA";
/// Container format version.
pub const CONTAINER_VERSION: u32 = 2;
/// Endianness tag value; a foreign-endian reader sees it byte-swapped.
pub const ENDIAN_TAG: u32 = 0x0102_0304;
/// Header size in bytes.
pub const HEADER_BYTES: usize = 32;
/// Section-table entry size in bytes.
pub const ENTRY_BYTES: usize = 32;
/// Every payload starts on a multiple of this.
pub const SECTION_ALIGN: usize = 16;
/// Hard ceiling on the section count; real artifacts use < 8.
pub const MAX_SECTIONS: u32 = 64;

fn round_up(value: usize, align: usize) -> usize {
    value.div_ceil(align) * align
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Builds a RIPA v2 file from borrowed payload slices; the bytes are
/// copied exactly once, in [`RipaWriter::finish`].
pub struct RipaWriter<'a> {
    kind: u32,
    sections: Vec<(u32, usize, &'a [u8])>,
}

impl<'a> RipaWriter<'a> {
    /// A writer for an artifact of `kind`.
    pub fn new(kind: u32) -> Self {
        RipaWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Appends a typed record section; its alignment requirement is
    /// `align_of::<T>()`. Panics on a duplicate id or an alignment the
    /// container cannot guarantee — both are encoder programming
    /// errors, not data errors.
    pub fn section<T: Pod>(&mut self, id: u32, records: &'a [T]) -> &mut Self {
        self.raw_section(
            id,
            std::mem::align_of::<T>(),
            crate::bytes_of_slice(records),
        )
    }

    /// Appends a raw byte section with an explicit alignment.
    pub fn raw_section(&mut self, id: u32, align: usize, bytes: &'a [u8]) -> &mut Self {
        assert!(
            align.is_power_of_two() && align <= BASE_ALIGN,
            "section {id}: alignment {align} not representable (max {BASE_ALIGN})"
        );
        assert!(
            self.sections.iter().all(|&(sid, _, _)| sid != id),
            "duplicate section id {id}"
        );
        assert!(self.sections.len() < MAX_SECTIONS as usize);
        self.sections.push((id, align, bytes));
        self
    }

    /// Serializes header, table, and payloads into one buffer.
    pub fn finish(&self) -> Vec<u8> {
        let table_end = HEADER_BYTES + self.sections.len() * ENTRY_BYTES;
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = table_end;
        for &(_, _, bytes) in &self.sections {
            let offset = round_up(cursor, SECTION_ALIGN);
            offsets.push(offset);
            cursor = offset + bytes.len();
        }
        let total_len = cursor;

        let mut out = vec![0u8; total_len];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&CONTAINER_VERSION.to_ne_bytes());
        out[8..12].copy_from_slice(&(self.sections.len() as u32).to_ne_bytes());
        out[12..16].copy_from_slice(&self.kind.to_ne_bytes());
        out[16..24].copy_from_slice(&(total_len as u64).to_ne_bytes());
        out[24..28].copy_from_slice(&ENDIAN_TAG.to_ne_bytes());

        for (i, (&(id, align, bytes), &offset)) in
            self.sections.iter().zip(offsets.iter()).enumerate()
        {
            let entry = HEADER_BYTES + i * ENTRY_BYTES;
            out[entry..entry + 4].copy_from_slice(&id.to_ne_bytes());
            out[entry + 4..entry + 8].copy_from_slice(&(align as u32).to_ne_bytes());
            out[entry + 8..entry + 16].copy_from_slice(&(offset as u64).to_ne_bytes());
            out[entry + 16..entry + 24].copy_from_slice(&(bytes.len() as u64).to_ne_bytes());
            out[entry + 24..entry + 32].copy_from_slice(&fnv1a_striped(bytes).to_ne_bytes());
            out[offset..offset + bytes.len()].copy_from_slice(bytes);
        }
        // Header + table checksum goes into 28..32 last, so it covers
        // every structural field (ids, offsets, lengths, and the
        // per-section checksums themselves).
        let digest = table_checksum(&out, table_end);
        out[28..32].copy_from_slice(&digest.to_ne_bytes());
        out
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Entry {
    id: u32,
    offset: usize,
    len: usize,
}

/// A parsed, fully validated RIPA v2 file over shared bytes.
///
/// Construction validates *everything* — header fields, canonical
/// section layout, zero padding, and per-section checksums — so the
/// typed accessors afterwards only re-check what the type system
/// cannot see (record size and alignment).
pub struct RipaFile {
    bytes: Bytes,
    entries: Vec<Entry>,
}

impl std::fmt::Debug for RipaFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RipaFile")
            .field("len", &self.bytes.len())
            .field("sections", &self.entries.len())
            .field("backend", &self.bytes.backend())
            .finish()
    }
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_ne_bytes(bytes[at..at + 4].try_into().expect("range checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_ne_bytes(bytes[at..at + 8].try_into().expect("range checked"))
}

/// Low 32 bits of FNV-1a over header bytes 0..28 plus the section
/// table — the structural checksum stored at header offset 28.
fn table_checksum(data: &[u8], table_end: usize) -> u32 {
    let hash = fnv1a_extend(FNV_OFFSET_BASIS, &data[..28]);
    fnv1a_extend(hash, &data[HEADER_BYTES..table_end]) as u32
}

impl RipaFile {
    /// Parses and validates `bytes` as a RIPA v2 artifact of
    /// `expected_kind`. Every failure is a diagnostic string (the cache
    /// folds it into `CacheError::Corrupt`); this never panics and
    /// never allocates from untrusted counts.
    pub fn parse(bytes: Bytes, expected_kind: u32) -> Result<RipaFile, String> {
        let data = bytes.as_slice();
        if data.len() < HEADER_BYTES {
            return Err(format!(
                "artifact is {} bytes, shorter than the {HEADER_BYTES}-byte RIPA header",
                data.len()
            ));
        }
        if data[0..4] != MAGIC {
            return Err(format!("bad magic {:02x?}, expected \"RIPA\"", &data[0..4]));
        }
        if read_u32(data, 24) != ENDIAN_TAG {
            return Err(
                "endianness tag mismatch: artifact was written on a foreign-endian \
                 machine and cannot be cast in place"
                    .to_string(),
            );
        }
        let version = read_u32(data, 4);
        if version != CONTAINER_VERSION {
            return Err(format!(
                "unsupported RIPA container version {version} (expected {CONTAINER_VERSION})"
            ));
        }
        let section_count = read_u32(data, 8);
        // The count is bounds-checked against the real file length
        // before the table is touched, so a header bomb (u32::MAX here)
        // is rejected without any allocation proportional to it.
        let table_end = HEADER_BYTES as u64 + u64::from(section_count) * ENTRY_BYTES as u64;
        if section_count > MAX_SECTIONS || table_end > data.len() as u64 {
            return Err(format!(
                "section count {section_count} does not fit a {}-byte file",
                data.len()
            ));
        }
        let kind = read_u32(data, 12);
        if kind != expected_kind {
            return Err(format!(
                "artifact kind {kind} where kind {expected_kind} was expected"
            ));
        }
        let total_len = read_u64(data, 16);
        if total_len != data.len() as u64 {
            return Err(format!(
                "declared length {total_len} != actual {} (truncated or extended artifact)",
                data.len()
            ));
        }
        if read_u32(data, 28) != table_checksum(data, table_end as usize) {
            return Err("header/table checksum mismatch".to_string());
        }

        let mut entries = Vec::with_capacity(section_count as usize);
        let mut cursor = table_end as usize;
        for i in 0..section_count as usize {
            let at = HEADER_BYTES + i * ENTRY_BYTES;
            let id = read_u32(data, at);
            let align = read_u32(data, at + 4) as usize;
            let offset = read_u64(data, at + 8);
            let len = read_u64(data, at + 16);
            let checksum = read_u64(data, at + 24);
            if !align.is_power_of_two() || align > BASE_ALIGN {
                return Err(format!("section {id}: invalid alignment {align}"));
            }
            // Canonical layout: each payload sits exactly at the
            // previous end rounded up to SECTION_ALIGN. This makes
            // encoding byte-stable and rules out overlaps and gaps.
            let expected = round_up(cursor, SECTION_ALIGN) as u64;
            if offset != expected {
                return Err(format!(
                    "section {id}: offset {offset} violates canonical layout (expected {expected})"
                ));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| format!("section {id}: length overflow"))?;
            if end > data.len() as u64 {
                return Err(format!(
                    "section {id}: extends to {end}, past the {}-byte file",
                    data.len()
                ));
            }
            if data[cursor..offset as usize].iter().any(|&b| b != 0) {
                return Err(format!("section {id}: nonzero padding before payload"));
            }
            if entries.iter().any(|e: &Entry| e.id == id) {
                return Err(format!("duplicate section id {id}"));
            }
            let payload = &data[offset as usize..end as usize];
            if fnv1a_striped(payload) != checksum {
                return Err(format!("section {id}: FNV checksum mismatch"));
            }
            entries.push(Entry {
                id,
                offset: offset as usize,
                len: len as usize,
            });
            cursor = end as usize;
        }
        if cursor != data.len() {
            return Err(format!(
                "{} trailing bytes after the last section",
                data.len() - cursor
            ));
        }
        Ok(RipaFile { bytes, entries })
    }

    fn entry(&self, id: u32) -> Result<Entry, String> {
        self.entries
            .iter()
            .copied()
            .find(|e| e.id == id)
            .ok_or_else(|| format!("missing section {id}"))
    }

    /// The raw payload of section `id`, as a shared view.
    pub fn section(&self, id: u32) -> Result<Bytes, String> {
        let e = self.entry(id)?;
        Ok(self.bytes.slice(e.offset, e.len))
    }

    /// Section `id` as a validated typed view over the shared bytes.
    pub fn pod_section<T: Pod>(&self, id: u32) -> Result<PodSlice<T>, String> {
        PodSlice::new(self.section(id)?).map_err(|e| format!("section {id}: {e}"))
    }

    /// Copies the single `T` record out of section `id` (for small
    /// metadata headers, where borrowing buys nothing).
    pub fn read_one<T: Pod>(&self, id: u32) -> Result<T, String> {
        let e = self.entry(id)?;
        read_unaligned::<T>(&self.bytes.as_slice()[e.offset..e.offset + e.len])
            .map_err(|err| format!("section {id}: {err}"))
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIND: u32 = 7;

    fn sample() -> Vec<u8> {
        let meta = [3u32, 4];
        let floats = [1.0f32, 2.5, -3.75];
        let tail = [9u8, 8, 7, 6, 5];
        let mut w = RipaWriter::new(KIND);
        w.section(1, &meta).section(2, &floats).section(3, &tail);
        w.finish()
    }

    #[test]
    fn round_trip() {
        let encoded = sample();
        let file = RipaFile::parse(Bytes::copy_from_slice(&encoded), KIND).unwrap();
        assert_eq!(file.section_count(), 3);
        assert_eq!(file.pod_section::<u32>(1).unwrap().as_slice(), &[3, 4]);
        assert_eq!(
            file.pod_section::<f32>(2).unwrap().as_slice(),
            &[1.0, 2.5, -3.75]
        );
        assert_eq!(file.section(3).unwrap().as_slice(), &[9, 8, 7, 6, 5]);
        assert!(file.section(4).is_err());
    }

    #[test]
    fn encoding_is_byte_stable() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let encoded = sample();
        let err = RipaFile::parse(Bytes::copy_from_slice(&encoded), KIND + 1).unwrap_err();
        assert!(err.contains("kind"), "{err}");
    }

    #[test]
    fn header_bomb_is_rejected_before_allocation() {
        let mut encoded = sample();
        encoded[8..12].copy_from_slice(&u32::MAX.to_ne_bytes());
        let err = RipaFile::parse(Bytes::copy_from_slice(&encoded), KIND).unwrap_err();
        assert!(err.contains("section count"), "{err}");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let encoded = sample();
        for len in 0..encoded.len() {
            let res = RipaFile::parse(Bytes::copy_from_slice(&encoded[..len]), KIND);
            assert!(res.is_err(), "truncation to {len} bytes must fail");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut encoded = sample();
        encoded.push(0);
        let err = RipaFile::parse(Bytes::copy_from_slice(&encoded), KIND).unwrap_err();
        assert!(err.contains("length"), "{err}");
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_detected() {
        // Any one-bit change in any byte must surface as a parse error:
        // header fields are validated, layout is canonical, and the
        // payloads are checksummed, so nothing is silently accepted.
        let encoded = sample();
        for at in 0..encoded.len() {
            let mut bad = encoded.clone();
            bad[at] ^= 0x20;
            let res = RipaFile::parse(Bytes::copy_from_slice(&bad), KIND);
            assert!(res.is_err(), "flip at byte {at} went undetected");
        }
    }

    #[test]
    fn empty_sections_and_empty_files_work() {
        let mut w = RipaWriter::new(KIND);
        w.section::<u32>(1, &[]);
        let encoded = w.finish();
        let file = RipaFile::parse(Bytes::copy_from_slice(&encoded), KIND).unwrap();
        assert!(file.pod_section::<u32>(1).unwrap().is_empty());

        let none = RipaWriter::new(KIND).finish();
        let file = RipaFile::parse(Bytes::copy_from_slice(&none), KIND).unwrap();
        assert_eq!(file.section_count(), 0);
    }
}
