//! Dynamic-scene animation for the cross-frame predictor study (the §8
//! future-work direction: "Predictor states could potentially be preserved
//! between frames and the predictor retrained only for dynamic elements").
//!
//! An [`AnimatedScene`] splits a benchmark scene into a static part and a
//! dynamic part (a configurable fraction of the triangles, chosen around
//! the scene centre to stand in for moving characters/props). Each frame
//! rigidly transforms the dynamic part; the BVH is *refitted* (topology and
//! node ids unchanged, [`rip_bvh::Bvh::refit`]) so predictor state trained
//! on earlier frames remains meaningful.

use rip_bvh::Bvh;
use rip_math::{Triangle, Vec3};
use rip_scene::Scene;

/// A scene with a rigidly animated subset of triangles.
///
/// # Examples
///
/// ```
/// use rip_render::AnimatedScene;
/// use rip_scene::{SceneId, SceneScale};
///
/// let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 16, 16);
/// let mut animated = AnimatedScene::new(&scene, 0.1, 0.02);
/// let frame0 = animated.bvh().triangle_count();
/// animated.advance_frame();
/// assert_eq!(animated.bvh().triangle_count(), frame0, "topology is stable");
/// ```
#[derive(Clone, Debug)]
pub struct AnimatedScene {
    base: Vec<Triangle>,
    /// Indices of the dynamic triangles within `base`.
    dynamic: Vec<usize>,
    /// Orbit amplitude in world units.
    amplitude: f32,
    frame: u32,
    bvh: Bvh,
}

impl AnimatedScene {
    /// Splits off roughly `dynamic_fraction` of the scene's triangles
    /// (those nearest the scene centre) as the animated subset.
    ///
    /// `amplitude` is the per-frame displacement amplitude as a fraction of
    /// the scene diagonal (typical game-style motion: 0.01–0.05).
    ///
    /// # Panics
    ///
    /// Panics when `dynamic_fraction` is not in `(0, 1)` or the scene is
    /// empty.
    pub fn new(scene: &Scene, dynamic_fraction: f32, amplitude: f32) -> Self {
        assert!(
            dynamic_fraction > 0.0 && dynamic_fraction < 1.0,
            "dynamic fraction must be in (0, 1)"
        );
        let base: Vec<Triangle> = scene.mesh.triangles().collect();
        assert!(!base.is_empty(), "scene has no triangles");
        let bounds = scene.mesh.bounds();
        let pivot = bounds.center();
        // Nearest-to-centre triangles become the dynamic set.
        let mut by_distance: Vec<usize> = (0..base.len()).collect();
        by_distance.sort_by(|&a, &b| {
            let da = (base[a].centroid() - pivot).length_squared();
            let db = (base[b].centroid() - pivot).length_squared();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        let count = ((base.len() as f32 * dynamic_fraction) as usize).max(1);
        let dynamic = by_distance[..count].to_vec();
        let bvh = Bvh::build(&base);
        AnimatedScene {
            base,
            dynamic,
            amplitude: amplitude * bounds.diagonal_length(),
            frame: 0,
            bvh,
        }
    }

    /// Current frame number.
    pub fn frame(&self) -> u32 {
        self.frame
    }

    /// Number of dynamic triangles.
    pub fn dynamic_count(&self) -> usize {
        self.dynamic.len()
    }

    /// The current frame's BVH.
    pub fn bvh(&self) -> &Bvh {
        &self.bvh
    }

    /// The current frame's triangles.
    pub fn triangles(&self, frame: u32) -> Vec<Triangle> {
        let phase = frame as f32 * 0.35;
        let offset =
            Vec3::new(phase.sin(), 0.15 * (phase * 2.0).sin(), phase.cos()) * self.amplitude;
        let mut tris = self.base.clone();
        for &i in &self.dynamic {
            let t = &mut tris[i];
            // Rigid translation orbiting the pivot.
            *t = Triangle::new(t.a + offset, t.b + offset, t.c + offset);
        }
        tris
    }

    /// Advances to the next frame, refitting the BVH in place (node ids
    /// stay valid across frames).
    pub fn advance_frame(&mut self) {
        self.frame += 1;
        let tris = self.triangles(self.frame);
        self.bvh.refit(&tris).expect("triangle count is stable");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_bvh::TraversalKind;
    use rip_math::Ray;
    use rip_scene::{SceneId, SceneScale};

    fn animated() -> AnimatedScene {
        let scene = SceneId::FireplaceRoom.build_with_viewport(SceneScale::Tiny, 16, 16);
        AnimatedScene::new(&scene, 0.08, 0.02)
    }

    #[test]
    fn dynamic_subset_moves_static_does_not() {
        let a = animated();
        let f0 = a.triangles(0);
        let f3 = a.triangles(3);
        let mut moved = 0;
        let mut still = 0;
        for (t0, t3) in f0.iter().zip(&f3) {
            if (t0.a - t3.a).length() > 1e-6 {
                moved += 1;
            } else {
                still += 1;
            }
        }
        assert_eq!(moved, a.dynamic_count());
        assert!(still > moved, "most of the scene must be static");
    }

    #[test]
    fn refit_across_frames_stays_exact() {
        let mut a = animated();
        for _ in 0..4 {
            a.advance_frame();
            a.bvh().validate().unwrap();
            let tris = a.triangles(a.frame());
            let reference = Bvh::build(&tris);
            // Same results as a from-scratch rebuild for a ray batch.
            for i in 0..20 {
                let o = a.bvh().bounds().center()
                    + Vec3::new((i % 5) as f32 - 2.0, 1.0, (i / 5) as f32 - 2.0);
                let ray = Ray::segment(o, -Vec3::Y, 10.0);
                assert_eq!(
                    a.bvh().intersect(&ray, TraversalKind::AnyHit).hit.is_some(),
                    reference
                        .intersect(&ray, TraversalKind::AnyHit)
                        .hit
                        .is_some(),
                    "frame {} ray {i} diverged",
                    a.frame()
                );
            }
        }
    }

    #[test]
    fn frame_zero_matches_base_scene() {
        let a = animated();
        assert_eq!(a.frame(), 0);
        let f0 = a.triangles(0);
        // Frame 0 has zero offset only if sin(0)=0... phase 0 ⇒ offset =
        // (0, 0, amplitude) along z: frame 0 geometry equals base only for
        // the static part.
        assert_eq!(f0.len(), a.bvh().triangle_count());
    }

    #[test]
    #[should_panic(expected = "dynamic fraction")]
    fn bad_fraction_panics() {
        let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 8, 8);
        let _ = AnimatedScene::new(&scene, 1.5, 0.01);
    }
}
