//! Ambient-occlusion workload generation (§2.3, §5.2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_bvh::{Bvh, RayBatch, TraversalKernel, WhileWhileKernel};
use rip_math::{sampling, Ray, Vec3};
use rip_scene::Scene;

/// Builds the per-pixel primary-ray batch for a scene viewport, in
/// row-major pixel order.
pub(crate) fn primary_batch(scene: &Scene) -> RayBatch {
    let (width, height) = (scene.camera.width(), scene.camera.height());
    let mut batch = RayBatch::with_capacity((width * height) as usize);
    for y in 0..height {
        for x in 0..width {
            batch.push(scene.camera.primary_ray(x, y));
        }
    }
    batch
}

/// Parameters of the AO ray generator.
#[derive(Clone, Copy, Debug)]
pub struct AoConfig {
    /// Occlusion rays per primary hit point (§5.2: four).
    pub samples_per_hit: u32,
    /// Ray length as a fraction of the scene bounding-box diagonal,
    /// sampled uniformly from this range (§5.2: 25–40%).
    pub length_range: (f32, f32),
    /// RNG seed for the hemisphere sampling.
    pub seed: u64,
}

impl Default for AoConfig {
    fn default() -> Self {
        AoConfig {
            samples_per_hit: 4,
            length_range: (0.25, 0.40),
            seed: 0x0A0,
        }
    }
}

/// A generated AO workload: occlusion rays plus the pixel each ray shades.
///
/// # Examples
///
/// ```
/// use rip_bvh::Bvh;
/// use rip_render::{AoConfig, AoWorkload};
/// use rip_scene::{SceneId, SceneScale};
///
/// let scene = SceneId::LostEmpire.build_with_viewport(SceneScale::Tiny, 24, 24);
/// let tris: Vec<_> = scene.mesh.triangles().collect();
/// let bvh = Bvh::build(&tris);
/// let w = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
/// assert_eq!(w.rays.len(), w.ray_pixel.len());
/// ```
#[derive(Clone, Debug)]
pub struct AoWorkload {
    /// The occlusion rays, in generation (pixel) order — the paper's
    /// "unsorted" configuration.
    pub rays: Vec<Ray>,
    /// For each ray, the linear pixel index (`y * width + x`) it shades.
    pub ray_pixel: Vec<u32>,
    /// Viewport width.
    pub width: u32,
    /// Viewport height.
    pub height: u32,
    /// Pixels whose primary ray hit the scene.
    pub primary_hits: u32,
}

impl AoWorkload {
    /// Traces one primary ray per pixel (closest-hit) and spawns
    /// `samples_per_hit` cosine-weighted hemisphere rays at each hit point,
    /// exactly as §5.2 describes.
    ///
    /// # Panics
    ///
    /// Panics when `samples_per_hit` is zero or the length range is not
    /// within `(0, 1]` and increasing.
    pub fn generate(scene: &Scene, bvh: &Bvh, config: &AoConfig) -> Self {
        assert!(
            config.samples_per_hit > 0,
            "need at least one sample per hit"
        );
        let (lo, hi) = config.length_range;
        assert!(
            lo > 0.0 && hi <= 1.0 && lo <= hi,
            "bad length range ({lo}, {hi})"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let diag = bvh.bounds().diagonal_length();
        let (width, height) = (scene.camera.width(), scene.camera.height());
        let primaries = primary_batch(scene);
        let primary_results = WhileWhileKernel::new(bvh).closest_hit_batch(&primaries);
        let mut rays = Vec::new();
        let mut ray_pixel = Vec::new();
        let mut primary_hits = 0;
        // Iterate hits in pixel order so the RNG stream is consumed exactly
        // as a per-pixel loop would.
        for (pixel, result) in primary_results.iter().enumerate() {
            let Some(hit) = result.hit else {
                continue;
            };
            let primary = primaries.ray(pixel);
            primary_hits += 1;
            let point = primary.at(hit.t);
            let normal = bvh.triangle(hit.tri_index).unit_normal().unwrap_or(Vec3::Y);
            // Face the normal toward the camera side of the surface.
            let normal = if normal.dot(primary.direction) > 0.0 {
                -normal
            } else {
                normal
            };
            let origin = point + normal * (1e-4 * diag);
            for _ in 0..config.samples_per_hit {
                let dir = sampling::cosine_hemisphere_around(normal, rng.gen(), rng.gen());
                let len = diag * rng.gen_range(lo..=hi);
                rays.push(Ray::segment(origin, dir, len));
                ray_pixel.push(pixel as u32);
            }
        }
        AoWorkload {
            rays,
            ray_pixel,
            width,
            height,
            primary_hits,
        }
    }

    /// The occlusion rays as a SoA [`RayBatch`] ready for the batched
    /// kernel entry points (inverse directions precomputed once).
    pub fn batch(&self) -> RayBatch {
        RayBatch::from_rays(&self.rays)
    }

    /// Returns a copy of the rays sorted in Morton order (the paper's
    /// "sorted" configuration, §5.2), with the pixel map permuted to match.
    /// The permutation key is identical to `rip_bvh::sorting`.
    pub fn sorted(&self, bvh: &Bvh) -> AoWorkload {
        let perm = self.batch().morton_permutation(&bvh.bounds());
        AoWorkload {
            rays: perm.apply(&self.rays),
            ray_pixel: perm.apply(&self.ray_pixel),
            ..*self
        }
    }

    /// Assembles an ambient-occlusion image from per-ray hit flags
    /// (`true` = occluded): each pixel's value is the fraction of its rays
    /// that escaped (1 = fully lit).
    ///
    /// # Panics
    ///
    /// Panics when `hit_flags` length differs from the ray count.
    pub fn occlusion_image(&self, hit_flags: &[bool]) -> crate::GrayImage {
        assert_eq!(
            hit_flags.len(),
            self.rays.len(),
            "one flag per ray required"
        );
        let mut sum = vec![0.0f32; (self.width * self.height) as usize];
        let mut count = vec![0u32; (self.width * self.height) as usize];
        for (&pixel, &occluded) in self.ray_pixel.iter().zip(hit_flags) {
            sum[pixel as usize] += if occluded { 0.0 } else { 1.0 };
            count[pixel as usize] += 1;
        }
        let pixels = sum
            .iter()
            .zip(&count)
            .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f32 })
            .collect();
        crate::GrayImage::from_pixels(self.width, self.height, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_scene::{SceneId, SceneScale};

    fn tiny_scene() -> (Scene, Bvh) {
        let scene = SceneId::FireplaceRoom.build_with_viewport(SceneScale::Tiny, 24, 24);
        let tris: Vec<_> = scene.mesh.triangles().collect();
        let bvh = Bvh::build(&tris);
        (scene, bvh)
    }

    #[test]
    fn generates_four_rays_per_hit() {
        let (scene, bvh) = tiny_scene();
        let w = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
        assert_eq!(w.rays.len(), 4 * w.primary_hits as usize);
        assert!(
            w.primary_hits > 100,
            "interior camera should hit most pixels"
        );
    }

    #[test]
    fn ray_lengths_in_configured_range() {
        let (scene, bvh) = tiny_scene();
        let w = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
        let diag = bvh.bounds().diagonal_length();
        for r in &w.rays {
            let frac = r.t_max / diag;
            assert!((0.249..=0.401).contains(&frac), "length fraction {frac}");
            assert!((r.direction.length() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (scene, bvh) = tiny_scene();
        let a = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
        let b = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
        assert_eq!(a.rays.len(), b.rays.len());
        assert_eq!(a.rays[0], b.rays[0]);
        assert_eq!(a.rays[a.rays.len() - 1], b.rays[b.rays.len() - 1]);
    }

    #[test]
    fn sorted_orders_rays_by_morton_key() {
        let (scene, bvh) = tiny_scene();
        let w = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
        let s = w.sorted(&bvh);
        assert_eq!(s.rays.len(), w.rays.len());
        let bounds = bvh.bounds();
        let keys: Vec<u64> = s
            .rays
            .iter()
            .map(|r| rip_bvh::sorting::ray_sort_key(r, &bounds))
            .collect();
        assert!(
            keys.windows(2).all(|p| p[0] <= p[1]),
            "sorted workload must be key-ordered"
        );
        // Pixel map permuted alongside: same multiset of pixels.
        let mut a = w.ray_pixel.clone();
        let mut b = s.ray_pixel.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn occlusion_image_averages_flags() {
        let (scene, bvh) = tiny_scene();
        let w = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
        let all_occluded = vec![true; w.rays.len()];
        let img = w.occlusion_image(&all_occluded);
        assert!(img.pixels().iter().all(|&p| p == 0.0));
        let all_open = vec![false; w.rays.len()];
        let img = w.occlusion_image(&all_open);
        assert!(img.pixels().contains(&1.0));
    }

    #[test]
    #[should_panic(expected = "one flag per ray")]
    fn image_flag_length_checked() {
        let (scene, bvh) = tiny_scene();
        let w = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
        let _ = w.occlusion_image(&[true]);
    }
}
