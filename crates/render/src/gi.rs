//! Global-illumination path workload (§6.4).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_bvh::{Bvh, RayBatch, TraversalKernel, WhileWhileKernel};
use rip_math::{sampling, Ray, Vec3};
use rip_scene::Scene;

/// Parameters of the GI path generator.
#[derive(Clone, Copy, Debug)]
pub struct GiConfig {
    /// Diffuse bounces after the primary hit (§6.4 evaluates three).
    pub bounces: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GiConfig {
    fn default() -> Self {
        GiConfig {
            bounces: 3,
            seed: 0x61,
        }
    }
}

/// A generated GI workload: all closest-hit path segments in trace order.
///
/// Unlike occlusion rays these need the *closest* hit; the predictor
/// extension evaluated in §6.4 uses predicted intersections to trim each
/// ray's maximum length before traversal.
///
/// # Examples
///
/// ```
/// use rip_bvh::Bvh;
/// use rip_render::{GiConfig, GiWorkload};
/// use rip_scene::{SceneId, SceneScale};
///
/// let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 16, 16);
/// let tris: Vec<_> = scene.mesh.triangles().collect();
/// let bvh = Bvh::build(&tris);
/// let w = GiWorkload::generate(&scene, &bvh, &GiConfig { bounces: 2, seed: 1 });
/// assert!(w.rays.len() >= (16 * 16));
/// ```
#[derive(Clone, Debug)]
pub struct GiWorkload {
    /// All path segments (primary rays first, then bounce generations).
    pub rays: Vec<Ray>,
    /// Number of primary rays (= pixels).
    pub primary_rays: u32,
    /// Segments per bounce generation, `[primary, bounce1, bounce2, …]`.
    pub generation_sizes: Vec<u32>,
}

impl GiWorkload {
    /// Traces diffuse paths through the scene: each pixel's primary ray is
    /// followed by up to `bounces` cosine-sampled continuation rays from
    /// successive hit points. All segments are recorded in trace order so
    /// simulators replay the exact ray stream.
    pub fn generate(scene: &Scene, bvh: &Bvh, config: &GiConfig) -> Self {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let (width, height) = (scene.camera.width(), scene.camera.height());
        let mut rays = Vec::new();
        let mut generation_sizes = Vec::new();

        // Primary generation: one batch per bounce frontier, traced with
        // the batched while-while kernel. Continuations are spawned in ray
        // order so the RNG stream matches a per-ray loop exactly.
        let mut frontier = RayBatch::with_capacity((width * height) as usize);
        for y in 0..height {
            for x in 0..width {
                frontier.push(scene.camera.primary_ray(x, y));
            }
        }
        let primary_rays = frontier.len() as u32;
        let mut kernel = WhileWhileKernel::new(bvh);

        for _generation in 0..=config.bounces {
            if frontier.is_empty() {
                break;
            }
            generation_sizes.push(frontier.len() as u32);
            rays.extend(frontier.iter());
            let results = kernel.closest_hit_batch(&frontier);
            let mut next = RayBatch::with_capacity(frontier.len());
            for (i, result) in results.iter().enumerate() {
                let Some(hit) = result.hit else {
                    continue;
                };
                let ray = frontier.ray(i);
                let normal = bvh.triangle(hit.tri_index).unit_normal().unwrap_or(Vec3::Y);
                let normal = if normal.dot(ray.direction) > 0.0 {
                    -normal
                } else {
                    normal
                };
                let point = ray.at(hit.t) + normal * 1e-4 * bvh.bounds().diagonal_length();
                let dir = sampling::cosine_hemisphere_around(normal, rng.gen(), rng.gen());
                next.push(Ray::new(point, dir));
            }
            frontier = next;
        }
        GiWorkload {
            rays,
            primary_rays,
            generation_sizes,
        }
    }

    /// The full path-segment stream as a SoA [`RayBatch`] in trace order.
    pub fn batch(&self) -> RayBatch {
        RayBatch::from_rays(&self.rays)
    }

    /// One [`RayBatch`] per bounce generation, in trace order — the
    /// natural unit for wavefront-style batched tracing.
    pub fn generation_batches(&self) -> Vec<RayBatch> {
        let mut batches = Vec::with_capacity(self.generation_sizes.len());
        let mut offset = 0usize;
        for &size in &self.generation_sizes {
            let end = offset + size as usize;
            batches.push(RayBatch::from_rays(&self.rays[offset..end]));
            offset = end;
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_scene::{SceneId, SceneScale};

    fn tiny() -> (Scene, Bvh) {
        let scene = SceneId::LivingRoom.build_with_viewport(SceneScale::Tiny, 16, 16);
        let tris: Vec<_> = scene.mesh.triangles().collect();
        (scene, Bvh::build(&tris))
    }

    #[test]
    fn generations_shrink_monotonically() {
        let (scene, bvh) = tiny();
        let w = GiWorkload::generate(&scene, &bvh, &GiConfig::default());
        assert_eq!(w.generation_sizes[0], w.primary_rays);
        for pair in w.generation_sizes.windows(2) {
            assert!(
                pair[1] <= pair[0],
                "bounce generations cannot grow: {:?}",
                w.generation_sizes
            );
        }
        assert_eq!(
            w.rays.len() as u32,
            w.generation_sizes.iter().sum::<u32>(),
            "segments must equal the generation totals"
        );
    }

    #[test]
    fn bounce_count_bounds_generations() {
        let (scene, bvh) = tiny();
        let w = GiWorkload::generate(
            &scene,
            &bvh,
            &GiConfig {
                bounces: 2,
                seed: 3,
            },
        );
        assert!(w.generation_sizes.len() <= 3);
    }

    #[test]
    fn deterministic() {
        let (scene, bvh) = tiny();
        let a = GiWorkload::generate(&scene, &bvh, &GiConfig::default());
        let b = GiWorkload::generate(&scene, &bvh, &GiConfig::default());
        assert_eq!(a.rays.len(), b.rays.len());
        assert_eq!(a.rays.first(), b.rays.first());
        assert_eq!(a.rays.last(), b.rays.last());
    }

    #[test]
    fn bounce_rays_start_inside_scene() {
        let (scene, bvh) = tiny();
        let w = GiWorkload::generate(&scene, &bvh, &GiConfig::default());
        let bounds = bvh.bounds();
        let inflated = rip_math::Aabb::new(
            bounds.min - rip_math::Vec3::splat(1.0),
            bounds.max + rip_math::Vec3::splat(1.0),
        );
        for r in w.rays.iter().skip(w.primary_rays as usize) {
            assert!(
                inflated.contains_point(r.origin),
                "bounce origin escaped: {:?}",
                r.origin
            );
        }
    }
}
