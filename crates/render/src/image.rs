//! Minimal grayscale image container with PGM/PPM output.

use std::io::Write;

/// A grayscale image with `f32` pixels in `[0, 1]`, row-major with row 0 at
/// the bottom (matching camera coordinates).
///
/// # Examples
///
/// ```
/// use rip_render::GrayImage;
///
/// let img = GrayImage::from_pixels(2, 1, vec![0.0, 1.0]);
/// let mut out = Vec::new();
/// img.write_pgm(&mut out)?;
/// assert!(out.starts_with(b"P2"));
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GrayImage {
    width: u32,
    height: u32,
    pixels: Vec<f32>,
}

impl GrayImage {
    /// Creates an image from a pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics when the buffer length is not `width × height`.
    pub fn from_pixels(width: u32, height: u32, pixels: Vec<f32>) -> Self {
        assert_eq!(
            pixels.len(),
            (width * height) as usize,
            "pixel buffer size mismatch"
        );
        GrayImage {
            width,
            height,
            pixels,
        }
    }

    /// A black image.
    pub fn new(width: u32, height: u32) -> Self {
        GrayImage {
            width,
            height,
            pixels: vec![0.0; (width * height) as usize],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The pixel buffer.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Reads a pixel.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[(y * self.width + x) as usize]
    }

    /// Writes a pixel (clamped to `[0,1]`).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: u32, y: u32, value: f32) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.pixels[(y * self.width + x) as usize] = value.clamp(0.0, 1.0);
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f32 {
        if self.pixels.is_empty() {
            0.0
        } else {
            self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
        }
    }

    /// Writes ASCII PGM (P2), top row first as PGM expects.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_pgm<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "P2\n{} {}\n255", self.width, self.height)?;
        for y in (0..self.height).rev() {
            let row: Vec<String> = (0..self.width)
                .map(|x| format!("{}", (self.get(x, y).clamp(0.0, 1.0) * 255.0) as u8))
                .collect();
            writeln!(writer, "{}", row.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut img = GrayImage::new(4, 3);
        img.set(2, 1, 0.5);
        assert_eq!(img.get(2, 1), 0.5);
        img.set(0, 0, 7.0); // clamped
        assert_eq!(img.get(0, 0), 1.0);
    }

    #[test]
    fn mean_of_uniform_image() {
        let img = GrayImage::from_pixels(2, 2, vec![0.25; 4]);
        assert!((img.mean() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn pgm_header_and_size() {
        let img = GrayImage::from_pixels(3, 2, vec![0.0, 0.5, 1.0, 1.0, 0.5, 0.0]);
        let mut out = Vec::new();
        img.write_pgm(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("3 2"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.count(), 2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_panics() {
        let _ = GrayImage::from_pixels(2, 2, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let _ = GrayImage::new(2, 2).get(2, 0);
    }
}
