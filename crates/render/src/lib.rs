//! Workload generation and rendering utilities.
//!
//! Builds the ray workloads the paper evaluates (§5.2): ambient-occlusion
//! rays (primary closest-hit per pixel, then four cosine-sampled hemisphere
//! rays of length 25–40% of the scene bounding-box diagonal), reflection
//! rays for the correlation study, and multi-bounce global-illumination
//! paths (§6.4). Also provides PGM/PPM image output for the examples and
//! the analytic RT-Core reference throughput model substituting for the
//! paper's NVIDIA RTX 2080 Ti measurements (Figure 11; see DESIGN.md §2).
//!
//! # Examples
//!
//! ```
//! use rip_bvh::Bvh;
//! use rip_render::{AoConfig, AoWorkload};
//! use rip_scene::{SceneId, SceneScale};
//!
//! let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 32, 32);
//! let tris: Vec<_> = scene.mesh.triangles().collect();
//! let bvh = Bvh::build(&tris);
//! let workload = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
//! assert!(!workload.rays.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod animation;
mod ao;
mod gi;
mod image;
mod reference;
mod shadow;

pub use animation::AnimatedScene;
pub use ao::{AoConfig, AoWorkload};
pub use gi::{GiConfig, GiWorkload};
pub use image::GrayImage;
pub use reference::{reference_rays_per_second, ReferenceInput};
pub use shadow::{ShadowConfig, ShadowWorkload};

// The rip-exec engine moves workloads across worker threads; every public
// workload type must stay `Send + Sync` (compile-time check, no runtime cost).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnimatedScene>();
    assert_send_sync::<AoWorkload>();
    assert_send_sync::<GiWorkload>();
    assert_send_sync::<ShadowWorkload>();
    assert_send_sync::<GrayImage>();
};
