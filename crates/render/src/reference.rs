//! Analytic RT-Core reference throughput model for the Figure 11
//! correlation study.
//!
//! The paper validates its simulated RT unit by correlating simulated
//! rays/s against an NVIDIA RTX 2080 Ti running a Vulkan implementation of
//! the same primary/reflection workloads (correlation coefficient 0.9).
//! Real hardware is unavailable here, so we substitute an *independent*
//! analytic throughput model of a hardware RT core (DESIGN.md §2): the
//! point of the experiment — that the simulator tracks a separate
//! performance model's scene-to-scene ordering — is preserved, because the
//! reference model shares no code with the timing simulator.

/// Per-scene, per-ray-type workload characteristics feeding the reference
/// model (measured functionally, not by the timing simulator).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReferenceInput {
    /// Mean BVH node fetches per ray.
    pub mean_node_fetches: f64,
    /// Mean triangle fetches per ray.
    pub mean_tri_fetches: f64,
    /// Acceleration-structure footprint in megabytes.
    pub footprint_mb: f64,
}

/// Estimates the rays/s an RT-Core-class accelerator sustains for a
/// workload with the given characteristics.
///
/// Model: a hardware traversal unit retires roughly one node or triangle
/// test per clock per ray-pipeline; effective throughput divides the chip's
/// aggregate test rate by the per-ray work, derated by memory pressure as
/// the working set grows past the on-chip caches:
///
/// `rays/s = R / ((nodes + tris) · (1 + β·ln(1 + footprint/C)))`
///
/// with `R` the aggregate test rate (10⁹ tests/s per unit × units), `β`
/// the memory derating slope, and `C` the on-chip cache capacity in MB.
/// Constants approximate a 2080 Ti-class part (68 RT cores, ~10 Grays/s
/// peak on trivial scenes).
///
/// # Examples
///
/// ```
/// use rip_render::{reference_rays_per_second, ReferenceInput};
///
/// let easy = ReferenceInput { mean_node_fetches: 10.0, mean_tri_fetches: 2.0, footprint_mb: 4.0 };
/// let hard = ReferenceInput { mean_node_fetches: 40.0, mean_tri_fetches: 8.0, footprint_mb: 64.0 };
/// assert!(reference_rays_per_second(&easy) > reference_rays_per_second(&hard));
/// ```
pub fn reference_rays_per_second(input: &ReferenceInput) -> f64 {
    // Aggregate intersection-test throughput: 68 units × 1 GHz-class rate.
    const AGGREGATE_TESTS_PER_SECOND: f64 = 68.0e9;
    // Memory derating: slope and on-chip capacity (L2-class, MB).
    const BETA: f64 = 0.35;
    const CACHE_MB: f64 = 5.5;
    let work = (input.mean_node_fetches + input.mean_tri_fetches).max(1.0);
    let derate = 1.0 + BETA * (1.0 + input.footprint_mb / CACHE_MB).ln();
    AGGREGATE_TESTS_PER_SECOND / (work * derate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(nodes: f64, tris: f64, mb: f64) -> ReferenceInput {
        ReferenceInput {
            mean_node_fetches: nodes,
            mean_tri_fetches: tris,
            footprint_mb: mb,
        }
    }

    #[test]
    fn more_work_means_fewer_rays() {
        assert!(
            reference_rays_per_second(&input(10.0, 2.0, 10.0))
                > reference_rays_per_second(&input(30.0, 2.0, 10.0))
        );
    }

    #[test]
    fn bigger_scenes_derate_throughput() {
        assert!(
            reference_rays_per_second(&input(20.0, 4.0, 2.0))
                > reference_rays_per_second(&input(20.0, 4.0, 200.0))
        );
    }

    #[test]
    fn magnitudes_are_hardware_plausible() {
        // A moderate scene should land in the 10⁸–10¹⁰ rays/s range a
        // 2080 Ti-class device reports for simple workloads.
        let r = reference_rays_per_second(&input(25.0, 5.0, 20.0));
        assert!((1e8..1e10).contains(&r), "rays/s {r}");
    }

    #[test]
    fn degenerate_zero_work_is_safe() {
        let r = reference_rays_per_second(&input(0.0, 0.0, 0.0));
        assert!(r.is_finite() && r > 0.0);
    }
}
