//! Shadow-ray workload: the other occlusion-ray class of §2.2.
//!
//! Shadow rays, like AO rays, "test for any object intersection, without
//! requiring the closest intersection to be found" — they are exactly the
//! workload class the predictor targets. This generator casts one shadow
//! ray per primary hit point toward each of a set of point lights,
//! producing longer and more directionally coherent occlusion rays than
//! the AO hemisphere.

use rip_bvh::{Bvh, RayBatch, TraversalKernel, WhileWhileKernel};
use rip_math::{Ray, Vec3};
use rip_scene::Scene;

/// Parameters of the shadow-ray generator.
#[derive(Clone, Debug, Default)]
pub struct ShadowConfig {
    /// Point light positions in world space. When empty, lights are placed
    /// automatically near the top corners of the scene bounds.
    pub lights: Vec<Vec3>,
}

/// A generated shadow workload.
///
/// # Examples
///
/// ```
/// use rip_bvh::Bvh;
/// use rip_render::{ShadowConfig, ShadowWorkload};
/// use rip_scene::{SceneId, SceneScale};
///
/// let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 16, 16);
/// let tris: Vec<_> = scene.mesh.triangles().collect();
/// let bvh = Bvh::build(&tris);
/// let w = ShadowWorkload::generate(&scene, &bvh, &ShadowConfig::default());
/// assert!(!w.rays.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct ShadowWorkload {
    /// Occlusion rays toward the lights, in pixel-then-light order.
    pub rays: Vec<Ray>,
    /// For each ray, the linear pixel index it shades.
    pub ray_pixel: Vec<u32>,
    /// The lights used.
    pub lights: Vec<Vec3>,
    /// Viewport width.
    pub width: u32,
    /// Viewport height.
    pub height: u32,
}

impl ShadowWorkload {
    /// Traces one primary ray per pixel and spawns one shadow ray per
    /// light from each hit point, each exactly as long as the distance to
    /// its light (an any-hit on the segment means the point is shadowed).
    pub fn generate(scene: &Scene, bvh: &Bvh, config: &ShadowConfig) -> Self {
        let bounds = bvh.bounds();
        let lights = if config.lights.is_empty() {
            let d = bounds.diagonal();
            vec![
                bounds.min + d * Vec3::new(0.2, 0.92, 0.2),
                bounds.min + d * Vec3::new(0.8, 0.92, 0.8),
            ]
        } else {
            config.lights.clone()
        };
        let (width, height) = (scene.camera.width(), scene.camera.height());
        let primaries = crate::ao::primary_batch(scene);
        let primary_results = WhileWhileKernel::new(bvh).closest_hit_batch(&primaries);
        let mut rays = Vec::new();
        let mut ray_pixel = Vec::new();
        let eps = 1e-4 * bounds.diagonal_length();
        for (pixel, result) in primary_results.iter().enumerate() {
            let Some(hit) = result.hit else {
                continue;
            };
            let primary = primaries.ray(pixel);
            let point = primary.at(hit.t);
            let normal = bvh.triangle(hit.tri_index).unit_normal().unwrap_or(Vec3::Y);
            let normal = if normal.dot(primary.direction) > 0.0 {
                -normal
            } else {
                normal
            };
            for &light in &lights {
                let to_light = light - point;
                let distance = to_light.length();
                let Some(dir) = to_light.try_normalized() else {
                    continue;
                };
                // Lights behind the surface cast no ray (always dark).
                if dir.dot(normal) <= 0.0 {
                    continue;
                }
                rays.push(Ray::with_interval(
                    point + normal * eps,
                    dir,
                    0.0,
                    distance - 2.0 * eps,
                ));
                ray_pixel.push(pixel as u32);
            }
        }
        ShadowWorkload {
            rays,
            ray_pixel,
            lights,
            width,
            height,
        }
    }

    /// The shadow rays as a SoA [`RayBatch`] ready for the batched kernel
    /// entry points.
    pub fn batch(&self) -> RayBatch {
        RayBatch::from_rays(&self.rays)
    }

    /// Returns a copy of the rays sorted in Morton order, with the pixel
    /// map permuted to match (the paper's "sorted" configuration).
    pub fn sorted(&self, bvh: &Bvh) -> ShadowWorkload {
        let perm = self.batch().morton_permutation(&bvh.bounds());
        ShadowWorkload {
            rays: perm.apply(&self.rays),
            ray_pixel: perm.apply(&self.ray_pixel),
            lights: self.lights.clone(),
            width: self.width,
            height: self.height,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_scene::{SceneId, SceneScale};

    fn setup() -> (Scene, Bvh) {
        let scene = SceneId::FireplaceRoom.build_with_viewport(SceneScale::Tiny, 24, 24);
        let tris: Vec<_> = scene.mesh.triangles().collect();
        let bvh = Bvh::build(&tris);
        (scene, bvh)
    }

    #[test]
    fn rays_end_at_their_light() {
        let (scene, bvh) = setup();
        let w = ShadowWorkload::generate(&scene, &bvh, &ShadowConfig::default());
        assert!(!w.rays.is_empty());
        for ray in w.rays.iter().take(200) {
            let end = ray.at(ray.t_max);
            let near_some_light = w
                .lights
                .iter()
                .any(|&l| (end - l).length() < 0.01 * bvh.bounds().diagonal_length());
            assert!(near_some_light, "segment end {end:?} not at a light");
        }
    }

    #[test]
    fn custom_lights_are_respected() {
        let (scene, bvh) = setup();
        let light = bvh.bounds().center() + Vec3::Y * 0.5;
        let w = ShadowWorkload::generate(
            &scene,
            &bvh,
            &ShadowConfig {
                lights: vec![light],
            },
        );
        assert_eq!(w.lights, vec![light]);
        assert!(
            w.rays.len() <= (24 * 24) as usize,
            "one light → at most one ray per pixel"
        );
    }

    #[test]
    fn shadow_rays_are_predictable_occlusion_rays() {
        // The §2.2 claim: shadow rays benefit from the predictor like AO
        // rays. Use a denser viewport and immediate training so the small
        // test workload can exercise the table.
        let scene = SceneId::FireplaceRoom.build_with_viewport(SceneScale::Tiny, 64, 64);
        let tris: Vec<_> = scene.mesh.triangles().collect();
        let bvh = Bvh::build(&tris);
        let w = ShadowWorkload::generate(&scene, &bvh, &ShadowConfig::default());
        let config = rip_core::PredictorConfig {
            update_delay: 0,
            ..rip_core::PredictorConfig::paper_default()
        };
        let sim = rip_core::FunctionalSim::new(
            config,
            rip_core::SimOptions {
                classify_accesses: false,
                ..Default::default()
            },
        );
        let report = sim.run(&bvh, &w.rays);
        assert!(
            report.prediction.predicted_rate() > 0.1,
            "shadow rays should train the table: p = {}",
            report.prediction.predicted_rate()
        );
        assert!(
            report.prediction.verified_rate() > 0.02,
            "some shadow predictions should verify: v = {}",
            report.prediction.verified_rate()
        );
    }
}
