//! Pinhole camera for primary-ray generation.

use rip_math::{Ray, Vec3};

/// A pinhole camera that maps pixel coordinates to primary rays.
///
/// §5.2: AO workloads "first compute the primary ray hit point for each
/// pixel in a 1024×1024 viewport". The camera owns the viewport dimensions
/// so callers iterate pixels and call [`Camera::primary_ray`].
///
/// # Examples
///
/// ```
/// use rip_math::Vec3;
/// use rip_scene::Camera;
///
/// let cam = Camera::look_at(
///     Vec3::new(0.0, 1.0, 5.0),
///     Vec3::ZERO,
///     Vec3::Y,
///     60.0,
///     64,
///     64,
/// );
/// let ray = cam.primary_ray(32, 32);
/// assert!((ray.direction.length() - 1.0).abs() < 1e-5);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Camera {
    position: Vec3,
    lower_left: Vec3,
    horizontal: Vec3,
    vertical: Vec3,
    width: u32,
    height: u32,
}

impl Camera {
    /// Creates a camera at `position` looking toward `target`.
    ///
    /// `vfov_degrees` is the vertical field of view; `width`/`height` the
    /// viewport in pixels.
    ///
    /// # Panics
    ///
    /// Panics when the viewport is empty, the field of view is not in
    /// `(0, 180)`, or `position == target`.
    pub fn look_at(
        position: Vec3,
        target: Vec3,
        up: Vec3,
        vfov_degrees: f32,
        width: u32,
        height: u32,
    ) -> Self {
        assert!(width > 0 && height > 0, "viewport must be non-empty");
        assert!(
            vfov_degrees > 0.0 && vfov_degrees < 180.0,
            "field of view must be in (0, 180) degrees"
        );
        let forward = (target - position)
            .try_normalized()
            .expect("camera position and target must differ");
        let right = forward
            .cross(up)
            .try_normalized()
            .expect("up must not be parallel to view");
        let true_up = right.cross(forward);
        let aspect = width as f32 / height as f32;
        let half_h = (vfov_degrees.to_radians() * 0.5).tan();
        let half_w = half_h * aspect;
        let horizontal = right * (2.0 * half_w);
        let vertical = true_up * (2.0 * half_h);
        let lower_left = forward - right * half_w - true_up * half_h;
        Camera {
            position,
            lower_left,
            horizontal,
            vertical,
            width,
            height,
        }
    }

    /// Raw basis vectors and viewport for serialization (crate-internal).
    /// Order: position, lower_left, horizontal, vertical.
    pub(crate) fn to_raw(self) -> ([Vec3; 4], u32, u32) {
        (
            [
                self.position,
                self.lower_left,
                self.horizontal,
                self.vertical,
            ],
            self.width,
            self.height,
        )
    }

    /// Rebuilds a camera from [`Camera::to_raw`] output (crate-internal).
    ///
    /// # Panics
    ///
    /// Panics when the viewport is empty.
    pub(crate) fn from_raw(basis: [Vec3; 4], width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "viewport must be non-empty");
        let [position, lower_left, horizontal, vertical] = basis;
        Camera {
            position,
            lower_left,
            horizontal,
            vertical,
            width,
            height,
        }
    }

    /// Viewport width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Viewport height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Camera position.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// The primary ray through the center of pixel `(x, y)`.
    ///
    /// `(0, 0)` is the lower-left pixel.
    ///
    /// # Panics
    ///
    /// Panics when the pixel lies outside the viewport.
    pub fn primary_ray(&self, x: u32, y: u32) -> Ray {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) outside viewport"
        );
        self.ray_through(
            (x as f32 + 0.5) / self.width as f32,
            (y as f32 + 0.5) / self.height as f32,
        )
    }

    /// The ray through normalized viewport coordinates `(u, v) ∈ [0,1]²`.
    pub fn ray_through(&self, u: f32, v: f32) -> Ray {
        let dir = (self.lower_left + self.horizontal * u + self.vertical * v).normalized();
        Ray::new(self.position, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        Camera::look_at(Vec3::new(0.0, 0.0, 5.0), Vec3::ZERO, Vec3::Y, 90.0, 100, 50)
    }

    #[test]
    fn center_ray_points_at_target() {
        let r = cam().ray_through(0.5, 0.5);
        assert!((r.direction - Vec3::new(0.0, 0.0, -1.0)).length() < 1e-5);
        assert_eq!(r.origin, Vec3::new(0.0, 0.0, 5.0));
    }

    #[test]
    fn corners_diverge_symmetrically() {
        let c = cam();
        let bl = c.ray_through(0.0, 0.0).direction;
        let br = c.ray_through(1.0, 0.0).direction;
        let tl = c.ray_through(0.0, 1.0).direction;
        assert!((bl.x + br.x).abs() < 1e-5, "horizontal symmetry");
        assert!((bl.y - tl.y).abs() > 0.1, "vertical spread exists");
        assert!(bl.x < 0.0 && br.x > 0.0);
    }

    #[test]
    fn aspect_ratio_widens_horizontal_fov() {
        let c = cam(); // aspect 2:1
        let right = c.ray_through(1.0, 0.5).direction;
        let top = c.ray_through(0.5, 1.0).direction;
        assert!(right.x.abs() > top.y.abs(), "wider than tall");
    }

    #[test]
    fn primary_ray_center_pixel() {
        let c = cam();
        let r = c.primary_ray(50, 25);
        // Not exactly the center (pixel centers are offset by half).
        assert!(r.direction.z < -0.9);
    }

    #[test]
    #[should_panic(expected = "outside viewport")]
    fn out_of_viewport_pixel_panics() {
        let _ = cam().primary_ray(100, 0);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn degenerate_look_at_panics() {
        let _ = Camera::look_at(Vec3::ZERO, Vec3::ZERO, Vec3::Y, 60.0, 10, 10);
    }
}
