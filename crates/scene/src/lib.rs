//! Scene substrate: triangle meshes, procedural benchmark scenes, cameras
//! and OBJ I/O.
//!
//! The paper evaluates on seven artist-authored scenes (Table 1). Those
//! models are not redistributable here, so this crate ships **seeded
//! procedural analogs** with matching triangle-count magnitude and the same
//! interior/architectural occlusion character (see `DESIGN.md` §2 for the
//! substitution rationale), plus a minimal OBJ loader so the original models
//! can be dropped in.
//!
//! # Examples
//!
//! ```
//! use rip_scene::{SceneId, SceneScale};
//!
//! let scene = SceneId::CrytekSponza.build(SceneScale::Tiny);
//! assert!(scene.mesh.triangle_count() > 100);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod camera;
mod mesh;
pub mod noise;
pub mod obj;
pub mod primitives;
pub mod procedural;
pub mod serial;
mod suite;

pub use camera::Camera;
pub use mesh::TriangleMesh;
pub use suite::{Scene, SceneId, SceneScale, SCENE_IDS};
