//! Indexed triangle meshes.

use rip_math::{Aabb, Triangle, Vec3};
use rip_pod::{PodBuf, PodSlice};

/// An indexed triangle mesh: shared vertex positions plus triangle index
/// triples.
///
/// This is the scene representation consumed by the BVH builder. It is
/// deliberately minimal — the predictor workloads (§5.2) need geometry only,
/// not materials or normals.
///
/// The buffers live in [`PodBuf`] storage: a mesh built in memory owns
/// its vectors, while one decoded from a RIPA v2 artifact borrows the
/// mapped sections directly ([`TriangleMesh::from_shared_buffers`]);
/// the first mutation detaches into an owned copy.
///
/// # Examples
///
/// ```
/// use rip_math::Vec3;
/// use rip_scene::TriangleMesh;
///
/// let mut mesh = TriangleMesh::new();
/// mesh.push_triangle(Vec3::ZERO, Vec3::X, Vec3::Y);
/// assert_eq!(mesh.triangle_count(), 1);
/// assert_eq!(mesh.triangle(0).centroid().z, 0.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TriangleMesh {
    positions: PodBuf<Vec3>,
    indices: PodBuf<[u32; 3]>,
}

fn check_indices(vertex_count: usize, indices: &[[u32; 3]]) -> Result<(), String> {
    let n = vertex_count as u32;
    for (i, tri) in indices.iter().enumerate() {
        if tri.iter().any(|&v| v >= n) {
            return Err(format!("triangle {i} references vertex beyond {n}"));
        }
    }
    Ok(())
}

impl TriangleMesh {
    /// Creates an empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a mesh with preallocated capacity.
    pub fn with_capacity(vertices: usize, triangles: usize) -> Self {
        TriangleMesh {
            positions: PodBuf::from(Vec::with_capacity(vertices)),
            indices: PodBuf::from(Vec::with_capacity(triangles)),
        }
    }

    /// Creates a mesh from raw buffers.
    ///
    /// # Errors
    ///
    /// Returns an error message when any index is out of range.
    pub fn from_buffers(positions: Vec<Vec3>, indices: Vec<[u32; 3]>) -> Result<Self, String> {
        check_indices(positions.len(), &indices)?;
        Ok(TriangleMesh {
            positions: positions.into(),
            indices: indices.into(),
        })
    }

    /// Creates a mesh borrowing validated views over shared bytes (the
    /// zero-copy decode path of the RIPA v2 artifact format): no buffer
    /// is copied, and the backing mapping stays alive for as long as
    /// the mesh (or any clone) does.
    ///
    /// # Errors
    ///
    /// Returns an error message when any index is out of range.
    pub fn from_shared_buffers(
        positions: PodSlice<Vec3>,
        indices: PodSlice<[u32; 3]>,
    ) -> Result<Self, String> {
        check_indices(positions.len(), &indices)?;
        Ok(TriangleMesh {
            positions: positions.into(),
            indices: indices.into(),
        })
    }

    /// Whether the buffers are borrowed from a shared mapping rather
    /// than owned (diagnostics for the zero-copy load path).
    pub fn is_shared(&self) -> bool {
        self.positions.is_shared() || self.indices.is_shared()
    }

    /// Number of triangles.
    #[inline]
    pub fn triangle_count(&self) -> usize {
        self.indices.len()
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.positions.len()
    }

    /// Whether the mesh has no triangles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Vertex positions.
    #[inline]
    pub fn positions(&self) -> &[Vec3] {
        self.positions.as_slice()
    }

    /// Triangle index triples.
    #[inline]
    pub fn indices(&self) -> &[[u32; 3]] {
        self.indices.as_slice()
    }

    /// The `i`-th triangle as a value type.
    ///
    /// # Panics
    ///
    /// Panics when `i >= triangle_count()`.
    #[inline]
    pub fn triangle(&self, i: usize) -> Triangle {
        let [a, b, c] = self.indices[i];
        Triangle::new(
            self.positions[a as usize],
            self.positions[b as usize],
            self.positions[c as usize],
        )
    }

    /// Iterates over all triangles as value types.
    pub fn triangles(&self) -> impl Iterator<Item = Triangle> + '_ {
        (0..self.triangle_count()).map(|i| self.triangle(i))
    }

    /// Appends a vertex and returns its index.
    #[inline]
    pub fn push_vertex(&mut self, p: Vec3) -> u32 {
        let idx = self.positions.len() as u32;
        self.positions.to_mut().push(p);
        idx
    }

    /// Appends a triangle by vertex indices.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[inline]
    pub fn push_indexed_triangle(&mut self, a: u32, b: u32, c: u32) {
        let n = self.positions.len() as u32;
        assert!(a < n && b < n && c < n, "triangle index out of range");
        self.indices.to_mut().push([a, b, c]);
    }

    /// Appends a triangle by positions (no vertex sharing).
    pub fn push_triangle(&mut self, a: Vec3, b: Vec3, c: Vec3) {
        let ia = self.push_vertex(a);
        let ib = self.push_vertex(b);
        let ic = self.push_vertex(c);
        self.indices.to_mut().push([ia, ib, ic]);
    }

    /// Appends a quad `(a,b,c,d)` as two triangles.
    pub fn push_quad(&mut self, a: Vec3, b: Vec3, c: Vec3, d: Vec3) {
        let ia = self.push_vertex(a);
        let ib = self.push_vertex(b);
        let ic = self.push_vertex(c);
        let id = self.push_vertex(d);
        let indices = self.indices.to_mut();
        indices.push([ia, ib, ic]);
        indices.push([ia, ic, id]);
    }

    /// Appends every vertex and triangle of `other`.
    pub fn merge(&mut self, other: &TriangleMesh) {
        let base = self.positions.len() as u32;
        self.positions
            .to_mut()
            .extend_from_slice(other.positions.as_slice());
        self.indices.to_mut().extend(
            other
                .indices
                .iter()
                .map(|t| [t[0] + base, t[1] + base, t[2] + base]),
        );
    }

    /// Translates every vertex by `offset`.
    pub fn translate(&mut self, offset: Vec3) {
        for p in self.positions.to_mut() {
            *p += offset;
        }
    }

    /// Scales every vertex component-wise about the origin.
    pub fn scale(&mut self, factors: Vec3) {
        for p in self.positions.to_mut() {
            *p = *p * factors;
        }
    }

    /// Rotates every vertex about the +Y axis by `radians`.
    pub fn rotate_y(&mut self, radians: f32) {
        let (s, c) = radians.sin_cos();
        for p in self.positions.to_mut() {
            let (x, z) = (p.x, p.z);
            p.x = c * x + s * z;
            p.z = -s * x + c * z;
        }
    }

    /// The bounding box of all vertices (empty box for an empty mesh).
    pub fn bounds(&self) -> Aabb {
        self.positions.iter().copied().collect()
    }

    /// Total surface area of all triangles.
    pub fn surface_area(&self) -> f32 {
        self.triangles().map(|t| t.area()).sum()
    }

    /// Checks structural invariants (indices in range, finite vertices).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.positions.len() as u32;
        for (i, p) in self.positions.iter().enumerate() {
            if !p.is_finite() {
                return Err(format!("vertex {i} is not finite: {p:?}"));
            }
        }
        for (i, tri) in self.indices.iter().enumerate() {
            if tri.iter().any(|&v| v >= n) {
                return Err(format!("triangle {i} references vertex beyond {n}"));
            }
        }
        Ok(())
    }
}

impl Extend<Triangle> for TriangleMesh {
    fn extend<T: IntoIterator<Item = Triangle>>(&mut self, iter: T) {
        for t in iter {
            self.push_triangle(t.a, t.b, t.c);
        }
    }
}

impl FromIterator<Triangle> for TriangleMesh {
    fn from_iter<T: IntoIterator<Item = Triangle>>(iter: T) -> Self {
        let mut mesh = TriangleMesh::new();
        mesh.extend(iter);
        mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut m = TriangleMesh::new();
        m.push_triangle(Vec3::ZERO, Vec3::X, Vec3::Y);
        assert_eq!(m.triangle_count(), 1);
        assert_eq!(m.vertex_count(), 3);
        let t = m.triangle(0);
        assert_eq!(t.a, Vec3::ZERO);
        assert_eq!(t.b, Vec3::X);
        assert_eq!(t.c, Vec3::Y);
    }

    #[test]
    fn quad_makes_two_triangles_with_shared_vertices() {
        let mut m = TriangleMesh::new();
        m.push_quad(Vec3::ZERO, Vec3::X, Vec3::new(1.0, 1.0, 0.0), Vec3::Y);
        assert_eq!(m.triangle_count(), 2);
        assert_eq!(m.vertex_count(), 4);
        assert!((m.surface_area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn merge_offsets_indices() {
        let mut a = TriangleMesh::new();
        a.push_triangle(Vec3::ZERO, Vec3::X, Vec3::Y);
        let mut b = TriangleMesh::new();
        b.push_triangle(Vec3::Z, Vec3::Z + Vec3::X, Vec3::Z + Vec3::Y);
        a.merge(&b);
        assert_eq!(a.triangle_count(), 2);
        assert_eq!(a.triangle(1).a, Vec3::Z);
        a.validate().unwrap();
    }

    #[test]
    fn transforms() {
        let mut m = TriangleMesh::new();
        m.push_triangle(Vec3::ZERO, Vec3::X, Vec3::Y);
        m.translate(Vec3::Z);
        assert_eq!(m.triangle(0).a, Vec3::Z);
        m.scale(Vec3::splat(2.0));
        assert_eq!(m.triangle(0).b, Vec3::new(2.0, 0.0, 2.0));
        let mut r = TriangleMesh::new();
        r.push_triangle(Vec3::X, Vec3::Y, Vec3::Z);
        r.rotate_y(std::f32::consts::FRAC_PI_2);
        // +X rotates toward -Z under this convention.
        assert!((r.triangle(0).a - Vec3::new(0.0, 0.0, -1.0)).length() < 1e-6);
    }

    #[test]
    fn bounds_cover_all_vertices() {
        let mut m = TriangleMesh::new();
        m.push_triangle(Vec3::new(-1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 0.0), Vec3::Y);
        let b = m.bounds();
        assert_eq!(b.min, Vec3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max, Vec3::new(2.0, 1.0, 0.0));
    }

    #[test]
    fn from_buffers_validates_indices() {
        let bad = TriangleMesh::from_buffers(vec![Vec3::ZERO], vec![[0, 0, 1]]);
        assert!(bad.is_err());
        let ok = TriangleMesh::from_buffers(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]);
        assert!(ok.is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_indexed_out_of_range_panics() {
        let mut m = TriangleMesh::new();
        m.push_vertex(Vec3::ZERO);
        m.push_indexed_triangle(0, 0, 1);
    }

    #[test]
    fn validate_rejects_nan_vertex() {
        let mut m = TriangleMesh::new();
        m.push_triangle(Vec3::new(f32::NAN, 0.0, 0.0), Vec3::X, Vec3::Y);
        assert!(m.validate().is_err());
    }

    #[test]
    fn collect_from_triangles() {
        let m: TriangleMesh = [Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]
            .into_iter()
            .collect();
        assert_eq!(m.triangle_count(), 1);
    }
}
