//! Seeded value noise used by the procedural scene generators.
//!
//! A tiny, dependency-free, fully deterministic 2-D value-noise / fBm
//! implementation. The benchmark scenes are *analogs* of the paper's scenes;
//! noise supplies the organic surface detail (terrain, cloth folds, clutter
//! displacement) that drives triangle counts up to the Table-1 magnitudes.

/// Deterministic 2-D value noise with fractional-Brownian-motion stacking.
///
/// # Examples
///
/// ```
/// use rip_scene::noise::ValueNoise;
///
/// let n = ValueNoise::new(42);
/// let a = n.fbm(0.3, 0.7, 4);
/// assert!((-1.5..=1.5).contains(&a));
/// assert_eq!(a, ValueNoise::new(42).fbm(0.3, 0.7, 4));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    /// Creates a noise field for the given seed.
    pub fn new(seed: u64) -> Self {
        ValueNoise { seed }
    }

    /// Hashes an integer lattice point to `[0, 1)`.
    fn lattice(&self, ix: i64, iy: i64) -> f32 {
        // SplitMix64-style scramble of the lattice coordinates and seed.
        let mut z = (ix as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((iy as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(self.seed.wrapping_mul(0x94D0_49BB_1331_11EB));
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Smooth value noise at `(x, y)`, in `[0, 1)`.
    pub fn sample(&self, x: f32, y: f32) -> f32 {
        let ix = x.floor() as i64;
        let iy = y.floor() as i64;
        let fx = x - x.floor();
        let fy = y - y.floor();
        // Quintic fade for C2 continuity.
        let fade = |t: f32| t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
        let (u, v) = (fade(fx), fade(fy));
        let n00 = self.lattice(ix, iy);
        let n10 = self.lattice(ix + 1, iy);
        let n01 = self.lattice(ix, iy + 1);
        let n11 = self.lattice(ix + 1, iy + 1);
        let nx0 = n00 + (n10 - n00) * u;
        let nx1 = n01 + (n11 - n01) * u;
        nx0 + (nx1 - nx0) * v
    }

    /// Fractional Brownian motion: `octaves` layers of [`sample`]
    /// (amplitude halved, frequency doubled per layer), recentred to
    /// roughly `[-1, 1]`.
    ///
    /// [`sample`]: ValueNoise::sample
    pub fn fbm(&self, x: f32, y: f32, octaves: u32) -> f32 {
        let mut total = 0.0;
        let mut amplitude = 1.0;
        let mut frequency = 1.0;
        let mut norm = 0.0;
        for _ in 0..octaves.max(1) {
            total += (self.sample(x * frequency, y * frequency) * 2.0 - 1.0) * amplitude;
            norm += amplitude;
            amplitude *= 0.5;
            frequency *= 2.0;
        }
        total / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = ValueNoise::new(1);
        let b = ValueNoise::new(1);
        let c = ValueNoise::new(2);
        assert_eq!(a.sample(1.3, 4.5), b.sample(1.3, 4.5));
        assert_ne!(a.sample(1.3, 4.5), c.sample(1.3, 4.5));
    }

    #[test]
    fn sample_in_unit_range() {
        let n = ValueNoise::new(99);
        for i in 0..200 {
            let v = n.sample(i as f32 * 0.173, i as f32 * -0.311);
            assert!((0.0..=1.0).contains(&v), "sample {v} out of range");
        }
    }

    #[test]
    fn fbm_bounded() {
        let n = ValueNoise::new(5);
        for i in 0..200 {
            let v = n.fbm(i as f32 * 0.217, i as f32 * 0.131, 5);
            assert!((-1.0..=1.0).contains(&v), "fbm {v} out of range");
        }
    }

    #[test]
    fn continuity_at_lattice_boundaries() {
        let n = ValueNoise::new(7);
        let eps = 1e-3;
        for i in 0..20 {
            let x = i as f32;
            let before = n.sample(x - eps, 0.5);
            let after = n.sample(x + eps, 0.5);
            assert!((before - after).abs() < 0.05, "discontinuity at x={x}");
        }
    }

    #[test]
    fn varies_across_space() {
        let n = ValueNoise::new(3);
        let vals: Vec<f32> = (0..50)
            .map(|i| n.sample(i as f32 * 0.37 + 0.1, 0.9))
            .collect();
        let min = vals.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.2, "noise looks constant: [{min}, {max}]");
    }
}
