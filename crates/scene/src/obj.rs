//! Minimal Wavefront OBJ reading and writing.
//!
//! The original paper models are `.obj` files from the McGuire Computer
//! Graphics Archive. This loader accepts that subset (vertex positions and
//! polygonal faces, which are fan-triangulated) so the real models can be
//! dropped into the benchmark suite in place of the procedural analogs.

use crate::TriangleMesh;
use std::fmt;
use std::io::{BufRead, Write};

/// Error produced while parsing an OBJ stream.
#[derive(Debug)]
pub enum ParseObjError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for ParseObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseObjError::Io(e) => write!(f, "i/o error while reading obj: {e}"),
            ParseObjError::Malformed { line, message } => {
                write!(f, "malformed obj at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseObjError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseObjError::Io(e) => Some(e),
            ParseObjError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseObjError {
    fn from(e: std::io::Error) -> Self {
        ParseObjError::Io(e)
    }
}

/// Parses OBJ text into a [`TriangleMesh`].
///
/// Supports `v` (positions) and `f` (faces with `v`, `v/vt`, `v//vn` or
/// `v/vt/vn` references, positive or negative indices). Faces with more than
/// three vertices are fan-triangulated. All other directives are ignored.
///
/// # Errors
///
/// Returns [`ParseObjError`] on I/O failure, unparseable numbers, or
/// out-of-range indices.
///
/// # Examples
///
/// ```
/// let src = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n";
/// let mesh = rip_scene::obj::read_obj(src.as_bytes())?;
/// assert_eq!(mesh.triangle_count(), 1);
/// # Ok::<(), rip_scene::obj::ParseObjError>(())
/// ```
pub fn read_obj<R: BufRead>(reader: R) -> Result<TriangleMesh, ParseObjError> {
    let mut mesh = TriangleMesh::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        match parts.next() {
            Some("v") => {
                let mut coords = [0.0f32; 3];
                for c in &mut coords {
                    let tok = parts.next().ok_or_else(|| ParseObjError::Malformed {
                        line: lineno,
                        message: "vertex with fewer than 3 coordinates".into(),
                    })?;
                    *c = tok.parse().map_err(|_| ParseObjError::Malformed {
                        line: lineno,
                        message: format!("bad coordinate '{tok}'"),
                    })?;
                }
                mesh.push_vertex(rip_math::Vec3::new(coords[0], coords[1], coords[2]));
            }
            Some("f") => {
                let mut idx = Vec::with_capacity(4);
                for tok in parts {
                    let v_tok = tok.split('/').next().unwrap_or(tok);
                    let raw: i64 = v_tok.parse().map_err(|_| ParseObjError::Malformed {
                        line: lineno,
                        message: format!("bad face index '{tok}'"),
                    })?;
                    let n = mesh.vertex_count() as i64;
                    let resolved = if raw > 0 { raw - 1 } else { n + raw };
                    if resolved < 0 || resolved >= n {
                        return Err(ParseObjError::Malformed {
                            line: lineno,
                            message: format!("face index {raw} out of range (have {n} vertices)"),
                        });
                    }
                    idx.push(resolved as u32);
                }
                if idx.len() < 3 {
                    return Err(ParseObjError::Malformed {
                        line: lineno,
                        message: "face with fewer than 3 vertices".into(),
                    });
                }
                for k in 1..idx.len() - 1 {
                    mesh.push_indexed_triangle(idx[0], idx[k], idx[k + 1]);
                }
            }
            _ => {} // normals, texcoords, groups, materials: ignored
        }
    }
    Ok(mesh)
}

/// Writes a mesh as OBJ text.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_obj<W: Write>(mesh: &TriangleMesh, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "# {} vertices, {} triangles",
        mesh.vertex_count(),
        mesh.triangle_count()
    )?;
    for p in mesh.positions() {
        writeln!(writer, "v {} {} {}", p.x, p.y, p.z)?;
    }
    for t in mesh.indices() {
        writeln!(writer, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_math::Vec3;

    #[test]
    fn parses_triangles_and_ignores_comments() {
        let src = "# comment\nv 0 0 0\nv 1 0 0\nv 0 1 0\nvn 0 0 1\nf 1 2 3\n";
        let mesh = read_obj(src.as_bytes()).unwrap();
        assert_eq!(mesh.triangle_count(), 1);
        assert_eq!(mesh.vertex_count(), 3);
    }

    #[test]
    fn fan_triangulates_quads() {
        let src = "v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n";
        let mesh = read_obj(src.as_bytes()).unwrap();
        assert_eq!(mesh.triangle_count(), 2);
    }

    #[test]
    fn supports_slash_and_negative_indices() {
        let src = "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1/1 2//2 -1\n";
        let mesh = read_obj(src.as_bytes()).unwrap();
        assert_eq!(mesh.triangle_count(), 1);
        assert_eq!(mesh.indices()[0], [0, 1, 2]);
    }

    #[test]
    fn rejects_out_of_range_index() {
        let src = "v 0 0 0\nf 1 2 3\n";
        assert!(matches!(
            read_obj(src.as_bytes()),
            Err(ParseObjError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn rejects_bad_coordinate() {
        let err = read_obj("v 0 zero 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_degenerate_face() {
        let src = "v 0 0 0\nv 1 0 0\nf 1 2\n";
        assert!(read_obj(src.as_bytes()).is_err());
    }

    #[test]
    fn round_trip() {
        let mut mesh = TriangleMesh::new();
        mesh.push_triangle(Vec3::ZERO, Vec3::X, Vec3::Y);
        mesh.push_triangle(Vec3::Z, Vec3::X, Vec3::Y);
        let mut buf = Vec::new();
        write_obj(&mesh, &mut buf).unwrap();
        let back = read_obj(buf.as_slice()).unwrap();
        assert_eq!(back.triangle_count(), mesh.triangle_count());
        for (a, b) in mesh.triangles().zip(back.triangles()) {
            assert!((a.a - b.a).length() < 1e-6);
            assert!((a.b - b.b).length() < 1e-6);
            assert!((a.c - b.c).length() < 1e-6);
        }
    }
}
