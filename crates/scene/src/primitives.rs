//! Tessellated primitive shapes appended onto a [`TriangleMesh`].
//!
//! Every generator is deterministic; subdivision counts let the scene
//! builders dial triangle budgets up to the Table-1 magnitudes.

use crate::TriangleMesh;
use rip_math::{Aabb, Vec3};

/// Appends the 12 triangles of an axis-aligned box.
pub fn add_box(mesh: &mut TriangleMesh, bounds: Aabb) {
    let (lo, hi) = (bounds.min, bounds.max);
    let v = |x: f32, y: f32, z: f32| Vec3::new(x, y, z);
    // -Z and +Z faces.
    mesh.push_quad(
        v(lo.x, lo.y, lo.z),
        v(hi.x, lo.y, lo.z),
        v(hi.x, hi.y, lo.z),
        v(lo.x, hi.y, lo.z),
    );
    mesh.push_quad(
        v(lo.x, lo.y, hi.z),
        v(lo.x, hi.y, hi.z),
        v(hi.x, hi.y, hi.z),
        v(hi.x, lo.y, hi.z),
    );
    // -X and +X faces.
    mesh.push_quad(
        v(lo.x, lo.y, lo.z),
        v(lo.x, hi.y, lo.z),
        v(lo.x, hi.y, hi.z),
        v(lo.x, lo.y, hi.z),
    );
    mesh.push_quad(
        v(hi.x, lo.y, lo.z),
        v(hi.x, lo.y, hi.z),
        v(hi.x, hi.y, hi.z),
        v(hi.x, hi.y, lo.z),
    );
    // -Y and +Y faces.
    mesh.push_quad(
        v(lo.x, lo.y, lo.z),
        v(lo.x, lo.y, hi.z),
        v(hi.x, lo.y, hi.z),
        v(hi.x, lo.y, lo.z),
    );
    mesh.push_quad(
        v(lo.x, hi.y, lo.z),
        v(hi.x, hi.y, lo.z),
        v(hi.x, hi.y, hi.z),
        v(lo.x, hi.y, hi.z),
    );
}

/// Appends a subdivided parallelogram patch with optional displacement.
///
/// The patch spans `origin + u·u_axis + v·v_axis` for `u, v ∈ [0,1]`,
/// tessellated into `nu × nv` quads (`2·nu·nv` triangles). `displace`
/// receives `(u, v)` and returns an offset added to each vertex — the hook
/// used for heightfield terrain, cloth folds and wall relief.
///
/// # Panics
///
/// Panics when `nu` or `nv` is zero.
pub fn add_patch<F>(
    mesh: &mut TriangleMesh,
    origin: Vec3,
    u_axis: Vec3,
    v_axis: Vec3,
    nu: u32,
    nv: u32,
    mut displace: F,
) where
    F: FnMut(f32, f32) -> Vec3,
{
    assert!(nu > 0 && nv > 0, "patch subdivision must be positive");
    let base = mesh.vertex_count() as u32;
    for j in 0..=nv {
        for i in 0..=nu {
            let u = i as f32 / nu as f32;
            let v = j as f32 / nv as f32;
            let p = origin + u_axis * u + v_axis * v + displace(u, v);
            mesh.push_vertex(p);
        }
    }
    let stride = nu + 1;
    for j in 0..nv {
        for i in 0..nu {
            let a = base + j * stride + i;
            let b = a + 1;
            let c = a + stride + 1;
            let d = a + stride;
            mesh.push_indexed_triangle(a, b, c);
            mesh.push_indexed_triangle(a, c, d);
        }
    }
}

/// Appends a flat subdivided parallelogram (no displacement).
pub fn add_grid(
    mesh: &mut TriangleMesh,
    origin: Vec3,
    u_axis: Vec3,
    v_axis: Vec3,
    nu: u32,
    nv: u32,
) {
    add_patch(mesh, origin, u_axis, v_axis, nu, nv, |_, _| Vec3::ZERO);
}

/// Appends a closed vertical cylinder (side wall plus end caps).
///
/// `segments` controls the tessellation around the circumference and
/// `stacks` along the height; side wall = `2·segments·stacks` triangles,
/// caps = `2·segments` more.
///
/// # Panics
///
/// Panics when `segments < 3` or `stacks == 0`.
pub fn add_cylinder(
    mesh: &mut TriangleMesh,
    center_bottom: Vec3,
    radius: f32,
    height: f32,
    segments: u32,
    stacks: u32,
) {
    assert!(segments >= 3, "cylinder needs at least 3 segments");
    assert!(stacks >= 1, "cylinder needs at least 1 stack");
    let ring_point = |s: u32, y: f32| {
        let a = 2.0 * std::f32::consts::PI * (s % segments) as f32 / segments as f32;
        center_bottom + Vec3::new(radius * a.cos(), y, radius * a.sin())
    };
    // Side wall.
    for k in 0..stacks {
        let y0 = height * k as f32 / stacks as f32;
        let y1 = height * (k + 1) as f32 / stacks as f32;
        for s in 0..segments {
            let p00 = ring_point(s, y0);
            let p10 = ring_point(s + 1, y0);
            let p01 = ring_point(s, y1);
            let p11 = ring_point(s + 1, y1);
            mesh.push_triangle(p00, p10, p11);
            mesh.push_triangle(p00, p11, p01);
        }
    }
    // Caps (triangle fans).
    let bottom = center_bottom;
    let top = center_bottom + Vec3::new(0.0, height, 0.0);
    for s in 0..segments {
        mesh.push_triangle(bottom, ring_point(s + 1, 0.0), ring_point(s, 0.0));
        mesh.push_triangle(top, ring_point(s, height), ring_point(s + 1, height));
    }
}

/// Appends a UV sphere with `segments × rings` resolution
/// (`2·segments·(rings−1)` triangles).
///
/// # Panics
///
/// Panics when `segments < 3` or `rings < 2`.
pub fn add_sphere(mesh: &mut TriangleMesh, center: Vec3, radius: f32, segments: u32, rings: u32) {
    assert!(segments >= 3 && rings >= 2, "sphere resolution too low");
    let point = |s: u32, r: u32| {
        let theta = std::f32::consts::PI * r as f32 / rings as f32;
        let phi = 2.0 * std::f32::consts::PI * (s % segments) as f32 / segments as f32;
        center
            + Vec3::new(
                radius * theta.sin() * phi.cos(),
                radius * theta.cos(),
                radius * theta.sin() * phi.sin(),
            )
    };
    for r in 0..rings {
        for s in 0..segments {
            let p00 = point(s, r);
            let p10 = point(s + 1, r);
            let p01 = point(s, r + 1);
            let p11 = point(s + 1, r + 1);
            if r > 0 {
                mesh.push_triangle(p00, p10, p11);
            }
            if r < rings - 1 {
                mesh.push_triangle(p00, p11, p01);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_has_12_triangles_and_exact_bounds() {
        let mut m = TriangleMesh::new();
        let b = Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0));
        add_box(&mut m, b);
        assert_eq!(m.triangle_count(), 12);
        assert_eq!(m.bounds(), b);
        // Surface area of a 1x2x3 box = 2*(2+6+3) = 22.
        assert!((m.surface_area() - 22.0).abs() < 1e-4);
        m.validate().unwrap();
    }

    #[test]
    fn grid_triangle_count_matches_formula() {
        let mut m = TriangleMesh::new();
        add_grid(&mut m, Vec3::ZERO, Vec3::X * 2.0, Vec3::Z * 3.0, 4, 5);
        assert_eq!(m.triangle_count(), 2 * 4 * 5);
        assert_eq!(m.vertex_count(), 5 * 6);
        assert!((m.surface_area() - 6.0).abs() < 1e-4);
        m.validate().unwrap();
    }

    #[test]
    fn patch_displacement_moves_vertices() {
        let mut m = TriangleMesh::new();
        add_patch(&mut m, Vec3::ZERO, Vec3::X, Vec3::Z, 2, 2, |u, v| {
            Vec3::Y * (u + v)
        });
        let b = m.bounds();
        assert!(b.max.y > 1.9, "displacement not applied: {b:?}");
        m.validate().unwrap();
    }

    #[test]
    fn cylinder_counts_and_bounds() {
        let mut m = TriangleMesh::new();
        add_cylinder(&mut m, Vec3::ZERO, 1.0, 2.0, 8, 3);
        assert_eq!(m.triangle_count(), (2 * 8 * 3 + 2 * 8) as usize);
        let b = m.bounds();
        assert!((b.min.y - 0.0).abs() < 1e-6 && (b.max.y - 2.0).abs() < 1e-6);
        assert!((b.max.x - 1.0).abs() < 1e-5);
        m.validate().unwrap();
    }

    #[test]
    fn sphere_counts_and_radius() {
        let mut m = TriangleMesh::new();
        add_sphere(&mut m, Vec3::ONE, 0.5, 8, 6);
        assert_eq!(m.triangle_count(), (2 * 8 * (6 - 1)) as usize);
        for t in m.triangles() {
            for p in [t.a, t.b, t.c] {
                assert!(((p - Vec3::ONE).length() - 0.5).abs() < 1e-5);
            }
        }
        m.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_subdivision_patch_panics() {
        let mut m = TriangleMesh::new();
        add_grid(&mut m, Vec3::ZERO, Vec3::X, Vec3::Z, 0, 1);
    }
}
