//! Two-story colonnaded atrium — analog of *Crytek Sponza* (262K triangles).

use super::{column_row, hanging_cloth, room_shell, scatter_boxes};
use crate::TriangleMesh;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rip_math::{Aabb, Vec3};

/// Builds a rectangular atrium with two floors of colonnades around an open
/// courtyard, hanging cloth banners (the iconic Sponza drapes) and floor
/// clutter.
pub fn build_atrium(budget: usize, seed: u64) -> TriangleMesh {
    let mut mesh = TriangleMesh::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let size = Vec3::new(36.0, 12.0, 20.0);

    // 25% shell, 35% columns, 25% cloth, 15% clutter.
    room_shell(&mut mesh, size, budget * 25 / 100, seed, 0.10);

    let cols = 10u32;
    let per_col = (budget * 35 / 100) / (4 * cols as usize);
    for (z, y) in [
        (4.0f32, 0.0f32),
        (size.z - 4.0, 0.0),
        (4.0, 6.0),
        (size.z - 4.0, 6.0),
    ] {
        column_row(
            &mut mesh,
            Vec3::new(3.0, y, z),
            Vec3::X * ((size.x - 6.0) / (cols - 1) as f32),
            cols,
            0.45,
            5.0,
            per_col,
        );
    }
    // Second-floor walkway slabs.
    for z in [2.0f32, size.z - 6.0] {
        crate::primitives::add_box(
            &mut mesh,
            Aabb::new(
                Vec3::new(1.0, 5.6, z),
                Vec3::new(size.x - 1.0, 6.0, z + 4.0),
            ),
        );
    }

    // Hanging banners across the courtyard.
    let banners = 6usize;
    let per_banner = (budget * 25 / 100) / banners;
    for i in 0..banners {
        let x = 5.0 + (size.x - 10.0) * i as f32 / (banners - 1) as f32;
        hanging_cloth(
            &mut mesh,
            Vec3::new(x, 10.0, 6.0),
            Vec3::Z * (size.z - 12.0),
            3.0,
            per_banner,
            seed ^ (i as u64 + 1),
        );
    }

    let clutter = ((budget * 15 / 100) / 12).max(4);
    scatter_boxes(
        &mut mesh,
        Aabb::new(
            Vec3::new(7.0, 0.0, 7.0),
            Vec3::new(size.x - 7.0, 0.0, size.z - 7.0),
        ),
        clutter,
        1.0,
        &mut rng,
    );
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_roughly_respected() {
        let m = build_atrium(20_000, 5);
        let n = m.triangle_count();
        assert!((10_000..40_000).contains(&n), "{n}");
        m.validate().unwrap();
    }

    #[test]
    fn distinct_seeds_move_clutter() {
        let a = build_atrium(3_000, 1);
        let b = build_atrium(3_000, 2);
        assert_ne!(a.positions(), b.positions());
    }
}
