//! Bistro interior — analog of the Lumberyard *Bistro (Interior)* scene
//! (1M triangles).

use super::{chair, room_shell, shelf_unit, sphere_res, table};
use crate::{primitives, TriangleMesh};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_math::{Aabb, Vec3};

/// Builds a restaurant interior: long bar counter, back-bar shelving dense
/// with bottles, a dining floor of tables and chairs, hanging pendant lamps
/// and window mullions.
pub fn build_bistro_interior(budget: usize, seed: u64) -> TriangleMesh {
    let mut mesh = TriangleMesh::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let size = Vec3::new(18.0, 4.5, 14.0);

    // 10% shell, 35% back-bar bottles, 30% dining sets, 15% lamps, 10% bar.
    room_shell(&mut mesh, size, budget * 10 / 100, seed, 0.03);

    // Bar counter along the -Z wall.
    primitives::add_box(
        &mut mesh,
        Aabb::new(Vec3::new(2.0, 0.0, 1.2), Vec3::new(14.0, 1.1, 2.0)),
    );
    // Bar stools.
    let bar_budget = budget * 10 / 100;
    let stools = 8usize;
    let seg = ((((bar_budget / stools) / 4) as f32).sqrt() as u32 * 2).max(8);
    for i in 0..stools {
        primitives::add_cylinder(
            &mut mesh,
            Vec3::new(2.8 + 1.4 * i as f32, 0.0, 2.6),
            0.2,
            0.8,
            seg,
            2,
        );
    }

    // Back-bar shelving stuffed with bottles (the triangle sink).
    let shelf_budget = budget * 35 / 100;
    let units = 6usize;
    for i in 0..units {
        shelf_unit(
            &mut mesh,
            Vec3::new(2.0 + 2.0 * i as f32, 0.0, 0.1),
            1.9,
            2.6,
            0.4,
            4,
            10,
            shelf_budget / (units * 4 * 10),
            &mut rng,
        );
    }

    // Dining floor: grid of table-and-chairs sets.
    let sets_x = 4usize;
    let sets_z = 3usize;
    for ix in 0..sets_x {
        for iz in 0..sets_z {
            let cx = 3.0 + 4.0 * ix as f32 + rng.gen_range(-0.3..0.3);
            let cz = 5.0 + 3.0 * iz as f32 + rng.gen_range(-0.3..0.3);
            table(&mut mesh, Vec3::new(cx, 0.0, cz), 1.1, 1.1, 0.75);
            for (dx, dz) in [(-0.9f32, 0.0f32), (0.9, 0.0), (0.0, -0.9), (0.0, 0.9)] {
                chair(&mut mesh, Vec3::new(cx + dx, 0.0, cz + dz), 0.5);
            }
        }
    }

    // Pendant lamps: spheres hanging from thin boxes.
    let lamp_budget = budget * 15 / 100;
    let lamps = 8usize;
    let (lseg, lrings) = sphere_res(lamp_budget / lamps);
    for i in 0..lamps {
        let x = 3.0 + 1.8 * i as f32;
        let z = 7.0 + (i % 2) as f32 * 2.0;
        primitives::add_sphere(&mut mesh, Vec3::new(x, 3.0, z), 0.3, lseg, lrings);
        primitives::add_box(
            &mut mesh,
            Aabb::new(
                Vec3::new(x - 0.02, 3.3, z - 0.02),
                Vec3::new(x + 0.02, size.y, z + 0.02),
            ),
        );
    }

    // Window mullions on the +Z wall.
    for i in 0..12 {
        let x = 1.0 + 1.4 * i as f32;
        primitives::add_box(
            &mut mesh,
            Aabb::new(
                Vec3::new(x, 0.8, size.z - 0.15),
                Vec3::new(x + 0.08, 3.6, size.z - 0.05),
            ),
        );
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_roughly_respected() {
        let m = build_bistro_interior(40_000, 13);
        let n = m.triangle_count();
        assert!((20_000..80_000).contains(&n), "{n}");
        m.validate().unwrap();
    }

    #[test]
    fn scene_has_dense_clutter_zone_near_back_bar() {
        let m = build_bistro_interior(10_000, 13);
        let back = m.triangles().filter(|t| t.centroid().z < 0.6).count();
        assert!(
            back > m.triangle_count() / 10,
            "back bar too sparse: {back}/{}",
            m.triangle_count()
        );
    }
}
