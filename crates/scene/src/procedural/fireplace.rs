//! Fireplace room — analog of the *Fireplace Room* scene (143K triangles).

use super::{chair, patch_res, room_shell, sofa, table};
use crate::{primitives, TriangleMesh};
use rip_math::{Aabb, Vec3};

/// Builds a den with a brick fireplace alcove, mantel, log pile, seating and
/// a panelled accent wall.
pub fn build_fireplace_room(budget: usize, seed: u64) -> TriangleMesh {
    let mut mesh = TriangleMesh::new();
    let size = Vec3::new(9.0, 3.0, 8.0);

    // 20% shell, 30% fireplace bricks, 25% sofa, 25% panelling.
    room_shell(&mut mesh, size, budget * 20 / 100, seed, 0.04);

    // Fireplace alcove: brick courses as rows of small boxes.
    let bricks_budget = budget * 30 / 100;
    let brick_count = (bricks_budget / 12).max(20);
    let courses = ((brick_count as f32).sqrt() as usize).max(4);
    let per_course = brick_count.div_ceil(courses);
    let fw = 2.4f32; // fireplace width
    let fh = 1.8f32;
    let fx = size.x / 2.0 - fw / 2.0;
    for c in 0..courses {
        let y0 = fh * c as f32 / courses as f32;
        let y1 = fh * (c + 1) as f32 / courses as f32;
        let offset = if c % 2 == 0 {
            0.0
        } else {
            0.5 / per_course as f32
        };
        for b in 0..per_course {
            let u0 = (b as f32 + offset) / per_course as f32;
            let u1 = (b as f32 + 0.92 + offset) / per_course as f32;
            primitives::add_box(
                &mut mesh,
                Aabb::new(
                    Vec3::new(fx + fw * u0, y0, 0.02),
                    Vec3::new(fx + fw * u1.min(1.0), y1 - 0.01, 0.22),
                ),
            );
        }
    }
    // Firebox opening and mantel.
    primitives::add_box(
        &mut mesh,
        Aabb::new(
            Vec3::new(fx + 0.5, 0.0, 0.0),
            Vec3::new(fx + fw - 0.5, 0.9, 0.25),
        ),
    );
    primitives::add_box(
        &mut mesh,
        Aabb::new(
            Vec3::new(fx - 0.2, fh, 0.0),
            Vec3::new(fx + fw + 0.2, fh + 0.12, 0.35),
        ),
    );
    // Log pile: short cylinders.
    for i in 0..4 {
        primitives::add_cylinder(
            &mut mesh,
            Vec3::new(fx + 0.7 + 0.25 * i as f32, 0.05, 0.05),
            0.08,
            0.5,
            8,
            1,
        );
    }

    sofa(
        &mut mesh,
        Vec3::new(2.0, 0.0, 4.5),
        3.0,
        budget * 25 / 100,
        seed ^ 5,
    );
    table(&mut mesh, Vec3::new(4.5, 0.0, 3.0), 1.2, 0.7, 0.4);
    chair(&mut mesh, Vec3::new(6.5, 0.0, 3.0), 0.55);

    // Panelled accent wall: displaced patch with rectangular relief.
    let n = patch_res(budget * 25 / 100);
    primitives::add_patch(
        &mut mesh,
        Vec3::new(size.x - 0.05, 0.0, 0.0),
        Vec3::Z * size.z,
        Vec3::Y * size.y,
        n,
        n,
        |u, v| {
            let panel = if (u * 6.0).fract() < 0.08 || (v * 3.0).fract() < 0.08 {
                0.0
            } else {
                0.04
            };
            -Vec3::X * panel
        },
    );
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_roughly_respected() {
        let m = build_fireplace_room(15_000, 11);
        let n = m.triangle_count();
        assert!((7_000..30_000).contains(&n), "{n}");
        m.validate().unwrap();
    }

    #[test]
    fn fireplace_bricks_exist_near_front_wall() {
        let m = build_fireplace_room(4_000, 11);
        let near_wall = m
            .triangles()
            .filter(|t| t.centroid().z < 0.4 && t.centroid().y < 2.0)
            .count();
        assert!(
            near_wall > 100,
            "only {near_wall} triangles near fireplace wall"
        );
    }
}
