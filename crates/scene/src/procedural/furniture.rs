//! Parametric furniture and architectural elements shared by the scene
//! generators.

use crate::{primitives, TriangleMesh};
use rip_math::{Aabb, Vec3};

/// Adds a row of `count` cylindrical columns along `axis` starting at
/// `start`. `detail` is the approximate triangle budget per column.
pub(crate) fn column_row(
    mesh: &mut TriangleMesh,
    start: Vec3,
    axis: Vec3,
    count: u32,
    radius: f32,
    height: f32,
    detail: usize,
) {
    // Side wall dominates: tris ≈ 2·seg·stacks + 2·seg = 2·seg·(stacks+1).
    let seg = (((detail as f32 / 8.0).sqrt() * 2.0) as u32).max(6);
    let stacks = ((detail as u32) / (2 * seg).max(1)).max(1);
    for i in 0..count {
        let base = start + axis * i as f32;
        primitives::add_cylinder(mesh, base, radius, height, seg, stacks);
        // Capital and plinth.
        let cap = radius * 1.4;
        primitives::add_box(
            mesh,
            Aabb::new(
                base + Vec3::new(-cap, height, -cap),
                base + Vec3::new(cap, height + radius, cap),
            ),
        );
        primitives::add_box(
            mesh,
            Aabb::new(
                base + Vec3::new(-cap, 0.0, -cap),
                base + Vec3::new(cap, radius, cap),
            ),
        );
    }
}

/// Adds a four-legged table with the top at `height` centered at `center`.
pub(crate) fn table(mesh: &mut TriangleMesh, center: Vec3, width: f32, depth: f32, height: f32) {
    let top_th = height * 0.06;
    let leg_w = width * 0.06;
    primitives::add_box(
        mesh,
        Aabb::new(
            center + Vec3::new(-width / 2.0, height - top_th, -depth / 2.0),
            center + Vec3::new(width / 2.0, height, depth / 2.0),
        ),
    );
    for (sx, sz) in [(-1.0f32, -1.0f32), (1.0, -1.0), (-1.0, 1.0), (1.0, 1.0)] {
        let lx = sx * (width / 2.0 - leg_w);
        let lz = sz * (depth / 2.0 - leg_w);
        primitives::add_box(
            mesh,
            Aabb::new(
                center + Vec3::new(lx - leg_w / 2.0, 0.0, lz - leg_w / 2.0),
                center + Vec3::new(lx + leg_w / 2.0, height - top_th, lz + leg_w / 2.0),
            ),
        );
    }
}

/// Adds a simple chair (seat, backrest, four legs) facing +Z.
pub(crate) fn chair(mesh: &mut TriangleMesh, center: Vec3, size: f32) {
    let seat_h = size * 0.45;
    let leg_w = size * 0.06;
    let half = size / 2.0;
    primitives::add_box(
        mesh,
        Aabb::new(
            center + Vec3::new(-half, seat_h - size * 0.05, -half),
            center + Vec3::new(half, seat_h, half),
        ),
    );
    primitives::add_box(
        mesh,
        Aabb::new(
            center + Vec3::new(-half, seat_h, -half),
            center + Vec3::new(half, size, -half + leg_w),
        ),
    );
    for (sx, sz) in [(-1.0f32, -1.0f32), (1.0, -1.0), (-1.0, 1.0), (1.0, 1.0)] {
        let lx = sx * (half - leg_w);
        let lz = sz * (half - leg_w);
        primitives::add_box(
            mesh,
            Aabb::new(
                center + Vec3::new(lx - leg_w / 2.0, 0.0, lz - leg_w / 2.0),
                center + Vec3::new(lx + leg_w / 2.0, seat_h - size * 0.05, lz + leg_w / 2.0),
            ),
        );
    }
}

/// Adds a sofa: base and backrest boxes plus two high-resolution displaced
/// cushion patches that soak up `cushion_detail` triangles.
pub(crate) fn sofa(
    mesh: &mut TriangleMesh,
    origin: Vec3,
    width: f32,
    cushion_detail: usize,
    seed: u64,
) {
    let depth = width * 0.4;
    let seat_h = width * 0.18;
    let back_h = width * 0.38;
    primitives::add_box(
        mesh,
        Aabb::new(origin, origin + Vec3::new(width, seat_h, depth)),
    );
    primitives::add_box(
        mesh,
        Aabb::new(
            origin + Vec3::new(0.0, seat_h, 0.0),
            origin + Vec3::new(width, back_h, depth * 0.25),
        ),
    );
    let noise = crate::noise::ValueNoise::new(seed);
    let n = super::patch_res(cushion_detail / 2);
    let bump = width * 0.02;
    // Seat cushion.
    primitives::add_patch(
        mesh,
        origin + Vec3::new(0.0, seat_h, depth * 0.25),
        Vec3::X * width,
        Vec3::Z * (depth * 0.75),
        n,
        n,
        |u, v| Vec3::Y * ((noise.fbm(u * 8.0, v * 8.0, 3) + (u * 12.6).sin() * 0.3) * bump),
    );
    // Back cushion.
    primitives::add_patch(
        mesh,
        origin + Vec3::new(0.0, seat_h, depth * 0.25),
        Vec3::X * width,
        Vec3::Y * (back_h - seat_h),
        n,
        n,
        |u, v| Vec3::Z * ((noise.fbm(u * 8.0 + 5.0, v * 8.0, 3) + (u * 9.4).cos() * 0.3) * bump),
    );
}

/// Adds a shelf unit against a wall with `items` small objects per shelf.
/// `item_detail` is the triangle budget per item (spheres and boxes
/// alternate, giving bottle/book-like clutter).
#[allow(clippy::too_many_arguments)] // a parametric generator, not an API
pub(crate) fn shelf_unit(
    mesh: &mut TriangleMesh,
    origin: Vec3,
    width: f32,
    height: f32,
    depth: f32,
    shelves: u32,
    items: u32,
    item_detail: usize,
    rng: &mut impl rand::Rng,
) {
    // Side panels and shelf boards.
    let th = 0.02f32.min(width * 0.02);
    primitives::add_box(
        mesh,
        Aabb::new(origin, origin + Vec3::new(th, height, depth)),
    );
    primitives::add_box(
        mesh,
        Aabb::new(
            origin + Vec3::new(width - th, 0.0, 0.0),
            origin + Vec3::new(width, height, depth),
        ),
    );
    for s in 0..=shelves {
        let y = height * s as f32 / shelves as f32;
        primitives::add_box(
            mesh,
            Aabb::new(
                origin + Vec3::new(0.0, (y - th).max(0.0), 0.0),
                origin + Vec3::new(width, y.max(th), depth),
            ),
        );
        if s == shelves {
            break;
        }
        let gap = height / shelves as f32;
        for i in 0..items {
            let x = width * (i as f32 + 0.5) / items as f32;
            let z = depth * rng.gen_range(0.3..0.7);
            let kind: u32 = rng.gen_range(0..3);
            let item_h = gap * rng.gen_range(0.4..0.8);
            let r = (width / items as f32 * 0.35).min(depth * 0.3);
            let base = origin + Vec3::new(x, y + th, z);
            match kind {
                0 => {
                    let (seg, rings) = super::sphere_res(item_detail);
                    primitives::add_sphere(mesh, base + Vec3::Y * r, r, seg, rings);
                }
                1 => {
                    let seg = (((item_detail / 4) as f32).sqrt() as u32 * 2).max(6);
                    let stacks = ((item_detail as u32) / (2 * seg).max(1)).max(1);
                    primitives::add_cylinder(mesh, base, r * 0.7, item_h, seg, stacks);
                }
                _ => {
                    primitives::add_box(
                        mesh,
                        Aabb::new(
                            base - Vec3::new(r, 0.0, r * 0.6),
                            base + Vec3::new(r, item_h, r * 0.6),
                        ),
                    );
                }
            }
        }
    }
}

/// Adds a hanging cloth banner: a displaced vertical patch with a sag fold.
pub(crate) fn hanging_cloth(
    mesh: &mut TriangleMesh,
    top_left: Vec3,
    across: Vec3,
    drop: f32,
    detail: usize,
    seed: u64,
) {
    let noise = crate::noise::ValueNoise::new(seed);
    let n = super::patch_res(detail);
    let out = across.cross(-Vec3::Y).try_normalized().unwrap_or(Vec3::Z);
    primitives::add_patch(mesh, top_left, across, -Vec3::Y * drop, n, n, |u, v| {
        let sag = (u * std::f32::consts::PI).sin() * v * drop * 0.15;
        let ripple = noise.fbm(u * 10.0, v * 6.0, 3) * drop * 0.03;
        out * (sag + ripple)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn column_row_produces_count_columns() {
        let mut m = TriangleMesh::new();
        column_row(&mut m, Vec3::ZERO, Vec3::X * 3.0, 4, 0.3, 4.0, 200);
        assert!(m.triangle_count() >= 4 * (2 * 6 * 2 + 24));
        m.validate().unwrap();
        let b = m.bounds();
        assert!(b.max.x > 9.0, "columns spread along axis");
    }

    #[test]
    fn table_and_chair_stand_on_floor() {
        let mut m = TriangleMesh::new();
        table(&mut m, Vec3::ZERO, 2.0, 1.0, 0.8);
        chair(&mut m, Vec3::new(3.0, 0.0, 0.0), 0.5);
        let b = m.bounds();
        assert!(b.min.y.abs() < 1e-5);
        assert!((b.max.y - 0.8).abs() < 1e-4);
        m.validate().unwrap();
    }

    #[test]
    fn sofa_consumes_cushion_budget() {
        let mut m = TriangleMesh::new();
        sofa(&mut m, Vec3::ZERO, 2.0, 2000, 3);
        assert!(m.triangle_count() > 1000, "{}", m.triangle_count());
        m.validate().unwrap();
    }

    #[test]
    fn shelf_unit_scales_with_items() {
        let mut small = TriangleMesh::new();
        let mut large = TriangleMesh::new();
        let mut rng1 = SmallRng::seed_from_u64(1);
        let mut rng2 = SmallRng::seed_from_u64(1);
        shelf_unit(&mut small, Vec3::ZERO, 2.0, 2.0, 0.4, 3, 4, 50, &mut rng1);
        shelf_unit(&mut large, Vec3::ZERO, 2.0, 2.0, 0.4, 3, 12, 200, &mut rng2);
        assert!(large.triangle_count() > small.triangle_count());
        small.validate().unwrap();
        large.validate().unwrap();
    }

    #[test]
    fn hanging_cloth_spans_drop() {
        let mut m = TriangleMesh::new();
        hanging_cloth(&mut m, Vec3::new(0.0, 3.0, 0.0), Vec3::X * 2.0, 1.5, 800, 9);
        let b = m.bounds();
        assert!(b.min.y < 1.6 && b.max.y > 2.9);
        m.validate().unwrap();
    }
}
