//! Vaulted hall — analog of *Sibenik Cathedral* (75K triangles).

use super::{column_row, patch_res, room_shell, scatter_boxes};
use crate::{primitives, TriangleMesh};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rip_math::Vec3;

/// Builds a long vaulted hall: stone floor and walls, two colonnades, a
/// rippled barrel-vault ceiling and scattered floor clutter.
///
/// `budget` is the approximate triangle count; `seed` drives all random
/// placement.
pub fn build_vaulted_hall(budget: usize, seed: u64) -> TriangleMesh {
    let mut mesh = TriangleMesh::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let size = Vec3::new(40.0, 14.0, 16.0);

    // 30% shell, 15% vault, 40% columns, 15% clutter.
    room_shell(&mut mesh, size, budget * 30 / 100, seed, 0.12);

    // Barrel vault: displaced patch under the ceiling.
    let vault_n = patch_res(budget * 15 / 100);
    let noise = crate::noise::ValueNoise::new(seed ^ 0xABCD);
    primitives::add_patch(
        &mut mesh,
        Vec3::new(0.0, size.y - 4.0, 0.0),
        Vec3::X * size.x,
        Vec3::Z * size.z,
        vault_n,
        vault_n,
        |u, v| {
            let arch = (v * std::f32::consts::PI).sin() * 3.5;
            let ribs = ((u * 40.0 * std::f32::consts::PI).sin() * 0.08).abs();
            Vec3::Y * (arch + ribs + noise.fbm(u * 12.0, v * 12.0, 2) * 0.1)
        },
    );

    // Two colonnades along the nave.
    let cols = 8u32;
    let per_col = (budget * 40 / 100) / (2 * cols as usize);
    column_row(
        &mut mesh,
        Vec3::new(4.0, 0.0, 4.0),
        Vec3::X * ((size.x - 8.0) / (cols - 1) as f32),
        cols,
        0.6,
        9.0,
        per_col,
    );
    column_row(
        &mut mesh,
        Vec3::new(4.0, 0.0, size.z - 4.0),
        Vec3::X * ((size.x - 8.0) / (cols - 1) as f32),
        cols,
        0.6,
        9.0,
        per_col,
    );

    // Pews / tombs / crates on the floor.
    let clutter = ((budget * 15 / 100) / 12).max(4);
    scatter_boxes(
        &mut mesh,
        rip_math::Aabb::new(
            Vec3::new(6.0, 0.0, 5.5),
            Vec3::new(size.x - 6.0, 0.0, size.z - 5.5),
        ),
        clutter,
        1.4,
        &mut rng,
    );
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_roughly_respected() {
        for budget in [2_000usize, 20_000] {
            let m = build_vaulted_hall(budget, 42);
            let n = m.triangle_count();
            assert!(
                n as f32 > budget as f32 * 0.5 && (n as f32) < budget as f32 * 1.8,
                "budget {budget} produced {n}"
            );
            m.validate().unwrap();
        }
    }

    #[test]
    fn hall_is_interior_with_height() {
        let m = build_vaulted_hall(4_000, 1);
        let b = m.bounds();
        assert!(b.diagonal().x > 30.0 && b.diagonal().y > 10.0);
    }
}
