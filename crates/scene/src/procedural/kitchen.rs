//! Country kitchen — analog of the *Country Kitchen* scene (1.4M
//! triangles), the densest model in the suite.

use super::{chair, hanging_cloth, patch_res, room_shell, shelf_unit, sphere_res, table};
use crate::{primitives, TriangleMesh};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_math::{Aabb, Vec3};

/// Builds a kitchen: counter runs with cabinets, dense dish/jar clutter,
/// a fruit bowl of high-resolution spheres, curtains, a farmhouse table and
/// beamed ceiling.
pub fn build_country_kitchen(budget: usize, seed: u64) -> TriangleMesh {
    let mut mesh = TriangleMesh::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let size = Vec3::new(11.0, 3.0, 9.0);

    // 10% shell, 35% shelf clutter, 20% fruit/dishes, 20% curtains, 15% rest.
    room_shell(&mut mesh, size, budget * 10 / 100, seed, 0.03);

    // Counter runs along two walls.
    for (lo, hi) in [
        (Vec3::new(0.2, 0.0, 0.2), Vec3::new(8.0, 0.9, 0.9)),
        (Vec3::new(0.2, 0.0, 0.9), Vec3::new(0.9, 0.9, 7.5)),
    ] {
        primitives::add_box(&mut mesh, Aabb::new(lo, hi));
        // Counter top overhang.
        primitives::add_box(
            &mut mesh,
            Aabb::new(
                Vec3::new(lo.x - 0.03, 0.9, lo.z - 0.03),
                Vec3::new(hi.x + 0.03, 0.95, hi.z + 0.03),
            ),
        );
    }

    // Upper cabinets with open shelving stuffed with dishes.
    let shelf_budget = budget * 35 / 100;
    let units = 5usize;
    for i in 0..units {
        shelf_unit(
            &mut mesh,
            Vec3::new(0.6 + 1.5 * i as f32, 1.5, 0.1),
            1.4,
            1.2,
            0.35,
            3,
            9,
            shelf_budget / (units * 3 * 9),
            &mut rng,
        );
    }

    // Fruit bowl: cluster of dense spheres on the table.
    table(&mut mesh, Vec3::new(6.0, 0.0, 5.0), 2.2, 1.2, 0.78);
    for (dx, dz) in [(-1.2f32, 0.0f32), (1.2, 0.0), (-1.2, 1.0), (1.2, 1.0)] {
        chair(&mut mesh, Vec3::new(6.0 + dx, 0.0, 5.0 + dz), 0.5);
    }
    let fruit_budget = budget * 20 / 100;
    let fruits = 9usize;
    let (fseg, frings) = sphere_res(fruit_budget / fruits);
    for i in 0..fruits {
        let a = i as f32 * 0.7;
        let r = 0.07 + 0.02 * ((i % 3) as f32);
        primitives::add_sphere(
            &mut mesh,
            Vec3::new(
                6.0 + a.cos() * 0.22 * (1.0 + (i / 3) as f32 * 0.8),
                0.85 + r,
                5.0 + a.sin() * 0.2,
            ),
            r,
            fseg,
            frings,
        );
    }

    // Curtains over two windows.
    let curtain_budget = budget * 20 / 100;
    hanging_cloth(
        &mut mesh,
        Vec3::new(3.0, 2.4, size.z - 0.1),
        Vec3::X * 1.6,
        1.6,
        curtain_budget / 2,
        seed ^ 21,
    );
    hanging_cloth(
        &mut mesh,
        Vec3::new(7.0, 2.4, size.z - 0.1),
        Vec3::X * 1.6,
        1.6,
        curtain_budget / 2,
        seed ^ 22,
    );

    // Ceiling beams and a noisy plaster ceiling patch.
    for i in 0..6 {
        let x = 1.0 + 1.7 * i as f32;
        primitives::add_box(
            &mut mesh,
            Aabb::new(
                Vec3::new(x, size.y - 0.25, 0.0),
                Vec3::new(x + 0.18, size.y - 0.02, size.z),
            ),
        );
    }
    let n = patch_res(budget * 15 / 100);
    let noise = crate::noise::ValueNoise::new(seed ^ 0x33);
    primitives::add_patch(
        &mut mesh,
        Vec3::new(0.0, 0.015, 0.0),
        Vec3::X * size.x,
        Vec3::Z * size.z,
        n,
        n,
        |u, v| Vec3::Y * (noise.fbm(u * 25.0, v * 25.0, 3).abs() * 0.012),
    );
    // Hanging pots over the counter.
    for i in 0..5 {
        let x = 1.0 + 1.4 * i as f32;
        primitives::add_cylinder(&mut mesh, Vec3::new(x, 2.1, 0.5), 0.12, 0.18, 10, 1);
        let _ = rng.gen::<u32>(); // keep the stream moving for seed diversity
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_roughly_respected() {
        let m = build_country_kitchen(50_000, 17);
        let n = m.triangle_count();
        assert!((25_000..100_000).contains(&n), "{n}");
        m.validate().unwrap();
    }

    #[test]
    fn kitchen_is_dense_relative_to_volume() {
        let m = build_country_kitchen(20_000, 17);
        let vol = {
            let d = m.bounds().diagonal();
            d.x * d.y * d.z
        };
        assert!(m.triangle_count() as f32 / vol > 10.0, "too sparse");
    }
}
