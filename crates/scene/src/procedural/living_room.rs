//! Furnished living room — analog of the *Living Room* scene
//! (581K triangles).

use super::{chair, patch_res, room_shell, shelf_unit, sofa, sphere_res, table};
use crate::{primitives, TriangleMesh};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rip_math::{Aabb, Vec3};

/// Builds a living room: shell, two sofas with high-resolution cushions, a
/// coffee table and chairs, a rug, bookshelves full of clutter and
/// decorative spheres (lamps, vases).
pub fn build_living_room(budget: usize, seed: u64) -> TriangleMesh {
    let mut mesh = TriangleMesh::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let size = Vec3::new(12.0, 3.2, 10.0);

    // 15% shell, 30% sofas, 15% rug, 25% shelves, 15% decor.
    room_shell(&mut mesh, size, budget * 15 / 100, seed, 0.03);

    sofa(
        &mut mesh,
        Vec3::new(1.0, 0.0, 1.0),
        3.4,
        budget * 15 / 100,
        seed ^ 1,
    );
    sofa(
        &mut mesh,
        Vec3::new(1.0, 0.0, 6.5),
        3.4,
        budget * 15 / 100,
        seed ^ 2,
    );

    table(&mut mesh, Vec3::new(4.5, 0.0, 4.2), 1.6, 0.9, 0.45);
    chair(&mut mesh, Vec3::new(6.2, 0.0, 3.0), 0.55);
    chair(&mut mesh, Vec3::new(6.2, 0.0, 5.4), 0.55);

    // Rug: noisy displaced patch.
    let rug_n = patch_res(budget * 15 / 100);
    let noise = crate::noise::ValueNoise::new(seed ^ 0x77);
    primitives::add_patch(
        &mut mesh,
        Vec3::new(3.2, 0.02, 2.8),
        Vec3::X * 3.2,
        Vec3::Z * 2.8,
        rug_n,
        rug_n,
        |u, v| Vec3::Y * (noise.fbm(u * 30.0, v * 30.0, 3).abs() * 0.015),
    );

    // Bookshelves along the far wall.
    let shelves_budget = budget * 25 / 100;
    let units = 3usize;
    for i in 0..units {
        shelf_unit(
            &mut mesh,
            Vec3::new(8.0 + 1.2 * i as f32, 0.0, size.z - 0.5),
            1.1,
            2.4,
            0.4,
            5,
            8,
            shelves_budget / (units * 5 * 8),
            &mut rng,
        );
    }

    // Decorative spheres: floor lamp globes, vases.
    let decor_budget = budget * 15 / 100;
    let spheres = 5usize;
    let (seg, rings) = sphere_res(decor_budget / spheres);
    for i in 0..spheres {
        let x = 1.5 + 2.0 * i as f32;
        primitives::add_sphere(
            &mut mesh,
            Vec3::new(x.min(size.x - 1.0), 1.6, 0.6),
            0.25,
            seg,
            rings,
        );
        primitives::add_box(
            &mut mesh,
            Aabb::new(
                Vec3::new(x.min(size.x - 1.0) - 0.03, 0.0, 0.57),
                Vec3::new(x.min(size.x - 1.0) + 0.03, 1.4, 0.63),
            ),
        );
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_roughly_respected() {
        let m = build_living_room(30_000, 9);
        let n = m.triangle_count();
        assert!((15_000..60_000).contains(&n), "{n}");
        m.validate().unwrap();
    }

    #[test]
    fn room_is_human_scale() {
        let m = build_living_room(5_000, 9);
        let d = m.bounds().diagonal();
        assert!(d.y < 4.0 && d.x > 10.0);
    }
}
