//! Procedural analogs of the paper's seven benchmark scenes (Table 1).
//!
//! Each generator is a deterministic function of `(budget, seed)` where
//! `budget` is a target triangle count. Generators aim within roughly ±20%
//! of the budget; Table 1 is regenerated from actual counts. The scenes are
//! interiors with floors, walls, structural elements and clutter — the same
//! occlusion character that makes short AO rays redundant in the originals.

mod atrium;
mod bistro;
mod fireplace;
mod furniture;
mod hall;
mod kitchen;
mod living_room;
mod voxel_terrain;

pub use atrium::build_atrium;
pub use bistro::build_bistro_interior;
pub use fireplace::build_fireplace_room;
pub use hall::build_vaulted_hall;
pub use kitchen::build_country_kitchen;
pub use living_room::build_living_room;
pub use voxel_terrain::build_voxel_terrain;

pub(crate) use furniture::*;

use crate::{primitives, TriangleMesh};
use rip_math::{Aabb, Vec3};

/// Builds an interior room shell: floor, ceiling and four walls, each a
/// subdivided patch with gentle noise relief so wall hits are spatially
/// diverse. Consumes roughly `budget` triangles.
pub(crate) fn room_shell(
    mesh: &mut TriangleMesh,
    size: Vec3,
    budget: usize,
    seed: u64,
    relief: f32,
) {
    let noise = crate::noise::ValueNoise::new(seed);
    // Six faces share the budget; each patch has 2*n*n triangles.
    let n = (((budget / 6) as f32 / 2.0).sqrt().floor() as u32).max(1);
    let face = |mesh: &mut TriangleMesh,
                origin: Vec3,
                u_axis: Vec3,
                v_axis: Vec3,
                normal: Vec3,
                phase: f32| {
        primitives::add_patch(mesh, origin, u_axis, v_axis, n, n, |u, v| {
            normal * (noise.fbm(u * 6.0 + phase, v * 6.0 + phase * 2.0, 3) * relief)
        });
    };
    let (sx, sy, sz) = (size.x, size.y, size.z);
    // Floor (+Y normal) and ceiling (−Y).
    face(mesh, Vec3::ZERO, Vec3::X * sx, Vec3::Z * sz, Vec3::Y, 0.0);
    face(
        mesh,
        Vec3::new(0.0, sy, 0.0),
        Vec3::X * sx,
        Vec3::Z * sz,
        -Vec3::Y,
        1.0,
    );
    // Walls.
    face(mesh, Vec3::ZERO, Vec3::X * sx, Vec3::Y * sy, Vec3::Z, 2.0);
    face(
        mesh,
        Vec3::new(0.0, 0.0, sz),
        Vec3::X * sx,
        Vec3::Y * sy,
        -Vec3::Z,
        3.0,
    );
    face(mesh, Vec3::ZERO, Vec3::Z * sz, Vec3::Y * sy, Vec3::X, 4.0);
    face(
        mesh,
        Vec3::new(sx, 0.0, 0.0),
        Vec3::Z * sz,
        Vec3::Y * sy,
        -Vec3::X,
        5.0,
    );
}

/// Scatters axis-aligned clutter boxes on the floor of `bounds`.
pub(crate) fn scatter_boxes(
    mesh: &mut TriangleMesh,
    bounds: Aabb,
    count: usize,
    max_size: f32,
    rng: &mut impl rand::Rng,
) {
    for _ in 0..count {
        let cx = rng.gen_range(bounds.min.x..bounds.max.x);
        let cz = rng.gen_range(bounds.min.z..bounds.max.z);
        let w = rng.gen_range(0.2..1.0) * max_size;
        let h = rng.gen_range(0.2..1.0) * max_size;
        let d = rng.gen_range(0.2..1.0) * max_size;
        primitives::add_box(
            mesh,
            Aabb::new(
                Vec3::new(cx - w / 2.0, bounds.min.y, cz - d / 2.0),
                Vec3::new(cx + w / 2.0, bounds.min.y + h, cz + d / 2.0),
            ),
        );
    }
}

/// Picks `(segments, rings)` for a UV sphere of roughly `tris` triangles.
pub(crate) fn sphere_res(tris: usize) -> (u32, u32) {
    let seg = ((tris as f32 / 4.0).sqrt() as u32).max(6);
    let rings = ((tris as u32) / (2 * seg).max(1) + 1).max(4);
    (seg, rings)
}

/// Picks `n` so a square `n×n` patch has roughly `tris` triangles.
pub(crate) fn patch_res(tris: usize) -> u32 {
    (((tris as f32) / 2.0).sqrt() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn room_shell_hits_budget_and_validates() {
        let mut m = TriangleMesh::new();
        room_shell(&mut m, Vec3::new(10.0, 4.0, 8.0), 1200, 7, 0.05);
        assert!(
            m.triangle_count() > 600 && m.triangle_count() <= 1400,
            "{}",
            m.triangle_count()
        );
        m.validate().unwrap();
    }

    #[test]
    fn scatter_boxes_emits_12_tris_each() {
        let mut m = TriangleMesh::new();
        let mut rng = SmallRng::seed_from_u64(1);
        scatter_boxes(
            &mut m,
            Aabb::new(Vec3::ZERO, Vec3::splat(5.0)),
            10,
            0.5,
            &mut rng,
        );
        assert_eq!(m.triangle_count(), 120);
    }

    #[test]
    fn resolution_helpers_reach_budget() {
        let (seg, rings) = sphere_res(5000);
        let tris = 2 * seg * (rings - 1);
        assert!((2000..=9000).contains(&tris), "sphere {tris}");
        let n = patch_res(5000);
        let tris = 2 * n * n;
        assert!((2500..=6000).contains(&tris), "patch {tris}");
    }

    #[test]
    fn all_scene_builders_are_deterministic() {
        let a = build_vaulted_hall(2000, 1);
        let b = build_vaulted_hall(2000, 1);
        assert_eq!(a.triangle_count(), b.triangle_count());
        assert_eq!(a.bounds(), b.bounds());
    }
}
