//! Voxel terrain town — analog of *Lost Empire* (225K triangles), the
//! Minecraft-style map from the McGuire archive.

use crate::{primitives, TriangleMesh};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_math::{Aabb, Vec3};

/// Builds a quantized heightfield of unit cubes with scattered block towers,
/// reproducing the axis-aligned, high-depth-complexity geometry of a voxel
/// map.
pub fn build_voxel_terrain(budget: usize, seed: u64) -> TriangleMesh {
    let mut mesh = TriangleMesh::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let noise = crate::noise::ValueNoise::new(seed);

    // Each surface voxel contributes ~12 triangles (top cube; column sides
    // are covered by neighbor cubes of differing height, which we emit as
    // one stretched box per cell). Grid of n×n cells ⇒ ~12·n² triangles.
    let n = (((budget / 12) as f32).sqrt() as usize).clamp(4, 1024);
    let cell = 1.0f32;
    for gz in 0..n {
        for gx in 0..n {
            let h = (noise.fbm(gx as f32 * 0.08, gz as f32 * 0.08, 4) * 6.0 + 7.0).floor();
            let h = h.max(1.0);
            let lo = Vec3::new(gx as f32 * cell, 0.0, gz as f32 * cell);
            let hi = lo + Vec3::new(cell, h, cell);
            primitives::add_box(&mut mesh, Aabb::new(lo, hi));
        }
    }
    // Block towers / buildings on ~2% of cells.
    let towers = (n * n / 50).max(1);
    for _ in 0..towers {
        let gx = rng.gen_range(0..n) as f32;
        let gz = rng.gen_range(0..n) as f32;
        let base_h = (noise.fbm(gx * 0.08, gz * 0.08, 4) * 6.0 + 7.0)
            .floor()
            .max(1.0);
        let height = rng.gen_range(3.0..10.0f32).floor();
        let w = rng.gen_range(1..4) as f32;
        primitives::add_box(
            &mut mesh,
            Aabb::new(
                Vec3::new(gx, base_h, gz),
                Vec3::new(gx + w, base_h + height, gz + w),
            ),
        );
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_roughly_respected() {
        let m = build_voxel_terrain(24_000, 3);
        let n = m.triangle_count();
        assert!((12_000..40_000).contains(&n), "{n}");
        m.validate().unwrap();
    }

    #[test]
    fn terrain_has_height_variation() {
        let m = build_voxel_terrain(12_000, 3);
        let max_y = m.bounds().max.y;
        assert!(max_y > 5.0, "terrain too flat: {max_y}");
    }

    #[test]
    fn all_geometry_axis_aligned() {
        // Every triangle of a voxel scene lies in an axis-aligned plane.
        let m = build_voxel_terrain(2_000, 3);
        for t in m.triangles() {
            let n = t.geometric_normal().abs();
            let axis_aligned = (n.x > 0.0) as u8 + (n.y > 0.0) as u8 + (n.z > 0.0) as u8 == 1;
            assert!(axis_aligned, "non-axis-aligned triangle {t:?}");
        }
    }
}
