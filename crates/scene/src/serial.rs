//! Scene artifact serialization on the RIPA v2 zero-copy container.
//!
//! The artifact cache in `rip-exec` persists generated procedural scenes
//! (indexed mesh + camera) so repeated experiment runs skip geometry
//! synthesis. Since format version 2 an artifact is a [`rip_pod::ripa`]
//! file: the vertex and index buffers are flat record sections behind a
//! checksummed header + section table, and [`decode_shared`] borrows
//! them straight out of the mapped bytes into the mesh's
//! [`rip_pod::PodBuf`] storage instead of copying element by element.
//! Index validity is still re-checked through
//! [`TriangleMesh::from_shared_buffers`], so a hostile-but-checksummed
//! artifact falls back to a rebuild instead of producing garbage.
//!
//! The legacy v1 stream codec is kept as [`encode_v1`]/[`decode_v1`]
//! solely as the measured baseline of `artifact_bench`; the cache never
//! reads or writes it (v1 artifacts are invisible under the v2 cache
//! key and simply rebuilt on miss).

use crate::{Camera, Scene, SceneId, TriangleMesh, SCENE_IDS};
use rip_math::Vec3;
use rip_pod::ripa::{RipaFile, RipaWriter};
use rip_pod::Bytes;

/// Bumped whenever the encoded layout changes; part of the header *and*
/// of the artifact cache key in `rip-exec`.
pub const FORMAT_VERSION: u32 = 2;

/// RIPA artifact kind of a scene.
pub const KIND_SCENE: u32 = 1;

// Section ids. META is a six-word `u32` array rather than a dedicated
// record type because this crate denies `unsafe_code` and so cannot
// declare new `Pod` impls; the primitive sections it needs are already
// covered by `rip-pod`.
const SEC_META: u32 = 1;
const SEC_CAMERA: u32 = 2;
const SEC_POSITIONS: u32 = 3;
const SEC_INDICES: u32 = 4;

// META words: scene_index, width, height, position_count, index_count,
// reserved (zero).
const META_WORDS: usize = 6;

/// Encodes `scene` into a self-contained RIPA v2 buffer. Re-encoding a
/// decoded scene is byte-identical.
pub fn encode(scene: &Scene) -> Vec<u8> {
    let positions = scene.mesh.positions();
    let indices = scene.mesh.indices();
    let (basis, width, height) = scene.camera.to_raw();
    let scene_index = SCENE_IDS
        .iter()
        .position(|&id| id == scene.id)
        .expect("id in SCENE_IDS") as u32;
    let meta = [
        scene_index,
        width,
        height,
        positions.len() as u32,
        indices.len() as u32,
        0,
    ];
    let mut w = RipaWriter::new(KIND_SCENE);
    w.section(SEC_META, &meta)
        .section(SEC_CAMERA, &basis)
        .section(SEC_POSITIONS, positions)
        .section(SEC_INDICES, indices);
    w.finish()
}

/// Decodes an owned buffer produced by [`encode`] (copies into an
/// aligned buffer, then runs [`decode_shared`]).
pub fn decode(bytes: &[u8]) -> Result<Scene, String> {
    decode_shared(Bytes::copy_from_slice(bytes))
}

/// Decodes a RIPA v2 scene artifact **in place**: the position and
/// index sections are borrowed out of `bytes` (owned aligned buffer or
/// page mapping alike) and only the camera basis is copied.
///
/// Any structural problem — wrong magic or kind, foreign version,
/// truncation, checksum mismatch, or indices that fail mesh validation
/// — is reported as `Err` so the caller can regenerate the scene
/// instead.
pub fn decode_shared(bytes: Bytes) -> Result<Scene, String> {
    let file = RipaFile::parse(bytes, KIND_SCENE)?;
    let meta = file.pod_section::<u32>(SEC_META)?;
    if meta.len() != META_WORDS {
        return Err(format!(
            "meta section holds {} words, expected {META_WORDS}",
            meta.len()
        ));
    }
    let [scene_index, width, height, position_count, index_count, reserved] =
        <[u32; META_WORDS]>::try_from(meta.as_slice()).expect("length checked");
    if reserved != 0 {
        return Err("reserved meta field is not zero".into());
    }
    let id: SceneId = *SCENE_IDS
        .get(scene_index as usize)
        .ok_or_else(|| format!("scene index {scene_index} out of range"))?;
    if width == 0 || height == 0 {
        return Err("scene artifact has an empty viewport".into());
    }
    let basis_section = file.pod_section::<Vec3>(SEC_CAMERA)?;
    let basis: [Vec3; 4] = <[Vec3; 4]>::try_from(basis_section.as_slice()).map_err(|_| {
        format!(
            "camera section holds {} vectors, expected 4",
            basis_section.len()
        )
    })?;
    let positions = file.pod_section::<Vec3>(SEC_POSITIONS)?;
    let indices = file.pod_section::<[u32; 3]>(SEC_INDICES)?;
    if positions.len() != position_count as usize || indices.len() != index_count as usize {
        return Err(format!(
            "meta promises {position_count}/{index_count} positions/triangles but sections \
             hold {}/{}",
            positions.len(),
            indices.len()
        ));
    }
    let mesh = TriangleMesh::from_shared_buffers(positions, indices)
        .map_err(|e| format!("decoded mesh failed validation: {e}"))?;
    Ok(Scene {
        id,
        mesh,
        camera: Camera::from_raw(basis, width, height),
    })
}

// ---------------------------------------------------------------------------
// Legacy v1 codec (microbench baseline only)
// ---------------------------------------------------------------------------

const V1_MAGIC: [u8; 4] = *b"RSCN";
const V1_VERSION: u32 = 1;

/// Encodes `scene` in the retired v1 element-wise stream layout.
///
/// Kept (with [`decode_v1`]) only so `artifact_bench` can measure the
/// cold-start cost the zero-copy format replaced; the artifact cache
/// neither writes nor reads this.
pub fn encode_v1(scene: &Scene) -> Vec<u8> {
    let positions = scene.mesh.positions();
    let indices = scene.mesh.indices();
    let (basis, width, height) = scene.camera.to_raw();
    let mut out = Vec::with_capacity(76 + positions.len() * 12 + indices.len() * 12);
    out.extend_from_slice(&V1_MAGIC);
    out.extend_from_slice(&V1_VERSION.to_le_bytes());
    let scene_index = SCENE_IDS
        .iter()
        .position(|&id| id == scene.id)
        .expect("id in SCENE_IDS");
    out.extend_from_slice(&(scene_index as u32).to_le_bytes());
    out.extend_from_slice(&(positions.len() as u32).to_le_bytes());
    out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
    for p in positions {
        put_vec3(&mut out, p);
    }
    for tri in indices {
        for &i in tri {
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
    for v in &basis {
        put_vec3(&mut out, v);
    }
    out.extend_from_slice(&width.to_le_bytes());
    out.extend_from_slice(&height.to_le_bytes());
    out
}

/// Decodes the retired v1 stream layout, element by element — exactly
/// the work the microbench compares the v2 mapped path against.
pub fn decode_v1(bytes: &[u8]) -> Result<Scene, String> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != V1_MAGIC {
        return Err("not a scene artifact (bad magic)".into());
    }
    let version = r.u32()?;
    if version != V1_VERSION {
        return Err(format!(
            "scene artifact version {version}, expected {V1_VERSION}"
        ));
    }
    let scene_index = r.u32()? as usize;
    let id: SceneId = *SCENE_IDS
        .get(scene_index)
        .ok_or_else(|| format!("scene index {scene_index} out of range"))?;
    let position_count = r.u32()? as usize;
    let index_count = r.u32()? as usize;

    // Guard the allocations below against a corrupt header: each position
    // and each index triple occupies 12 bytes, so the counts can never
    // promise more records than the buffer has bytes left.
    let promised = position_count
        .saturating_add(index_count)
        .saturating_mul(12);
    if promised > bytes.len().saturating_sub(r.at) {
        return Err(format!(
            "truncated scene artifact: header promises {position_count} positions and \
             {index_count} triangles but only {} bytes remain",
            bytes.len() - r.at
        ));
    }

    let mut positions = Vec::with_capacity(position_count);
    for _ in 0..position_count {
        positions.push(r.vec3()?);
    }
    let mut indices = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        indices.push([r.u32()?, r.u32()?, r.u32()?]);
    }
    let basis = [r.vec3()?, r.vec3()?, r.vec3()?, r.vec3()?];
    let width = r.u32()?;
    let height = r.u32()?;
    if r.at != bytes.len() {
        return Err(format!(
            "{} trailing bytes after scene artifact",
            bytes.len() - r.at
        ));
    }
    if width == 0 || height == 0 {
        return Err("scene artifact has an empty viewport".into());
    }

    let mesh = TriangleMesh::from_buffers(positions, indices)
        .map_err(|e| format!("decoded mesh failed validation: {e}"))?;
    Ok(Scene {
        id,
        mesh,
        camera: Camera::from_raw(basis, width, height),
    })
}

fn put_vec3(out: &mut Vec<u8>, v: &Vec3) {
    out.extend_from_slice(&v.x.to_le_bytes());
    out.extend_from_slice(&v.y.to_le_bytes());
    out.extend_from_slice(&v.z.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err("truncated scene artifact".into()),
        }
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn vec3(&mut self) -> Result<Vec3, String> {
        Ok(Vec3::new(self.f32()?, self.f32()?, self.f32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SceneScale;

    #[test]
    fn roundtrip_preserves_everything() {
        let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 32, 24);
        let decoded = decode(&encode(&scene)).unwrap();
        assert_eq!(decoded.id, scene.id);
        assert_eq!(decoded.mesh.positions(), scene.mesh.positions());
        assert_eq!(decoded.mesh.indices(), scene.mesh.indices());
        assert_eq!(decoded.camera, scene.camera);
        assert!(
            decoded.mesh.is_shared(),
            "v2 decode must borrow the buffer sections, not copy them"
        );
    }

    #[test]
    fn reencode_is_byte_identical() {
        let scene = SceneId::FireplaceRoom.build_with_viewport(SceneScale::Tiny, 16, 16);
        let bytes = encode(&scene);
        assert_eq!(encode(&decode(&bytes).unwrap()), bytes);
    }

    #[test]
    fn v1_roundtrip_still_works_as_bench_baseline() {
        let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 16, 16);
        let bytes = encode_v1(&scene);
        let decoded = decode_v1(&bytes).unwrap();
        assert_eq!(decoded.camera, scene.camera);
        assert_eq!(encode_v1(&decoded), bytes);
        assert!(
            !decoded.mesh.is_shared(),
            "v1 decode is the element-wise copy"
        );
        // The two codecs agree on the scene they describe.
        assert_eq!(encode(&decoded), encode(&scene));
    }

    #[test]
    fn rejects_bad_magic_version_truncation_and_flips() {
        let scene = SceneId::LostEmpire.build_with_viewport(SceneScale::Tiny, 16, 16);
        let bytes = encode(&scene);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xEE;
        assert!(decode(&bad_version).unwrap_err().contains("version"));

        assert!(decode(&bytes[..bytes.len() - 2])
            .unwrap_err()
            .contains("truncated"));

        // Any single-byte flip is detected by the container checksums.
        for at in (0..bytes.len()).step_by(11) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at {at} went undetected");
        }
    }

    #[test]
    fn rejects_invalid_mesh_indices_and_scene_index() {
        // Hostile artifacts with *intact* checksums: rebuild the
        // container from parsed sections with poisoned payloads.
        let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 16, 16);
        let file = RipaFile::parse(Bytes::copy_from_slice(&encode(&scene)), KIND_SCENE).unwrap();
        let meta = file.pod_section::<u32>(SEC_META).unwrap().to_vec();
        let camera = file.section(SEC_CAMERA).unwrap();
        let positions = file.section(SEC_POSITIONS).unwrap();
        let indices = file.pod_section::<[u32; 3]>(SEC_INDICES).unwrap().to_vec();

        let rebuild = |meta: &[u32], indices: &[[u32; 3]]| {
            let mut w = RipaWriter::new(KIND_SCENE);
            w.section(SEC_META, meta)
                .raw_section(SEC_CAMERA, 4, camera.as_slice())
                .raw_section(SEC_POSITIONS, 4, positions.as_slice())
                .section(SEC_INDICES, indices);
            w.finish()
        };

        let mut bad_indices = indices.clone();
        bad_indices[0] = [u32::MAX, 0, 1];
        assert!(decode(&rebuild(&meta, &bad_indices))
            .unwrap_err()
            .contains("validation"));

        let mut bad_meta = meta.clone();
        bad_meta[0] = 99; // far past SCENE_IDS
        assert!(decode(&rebuild(&bad_meta, &indices))
            .unwrap_err()
            .contains("out of range"));

        let mut empty_viewport = meta.clone();
        empty_viewport[1] = 0;
        assert!(decode(&rebuild(&empty_viewport, &indices))
            .unwrap_err()
            .contains("viewport"));
    }
}
