//! Compact binary serialization of a built [`Scene`].
//!
//! The artifact cache in `rip-exec` persists generated procedural scenes
//! (indexed mesh + camera) so repeated experiment runs skip geometry
//! synthesis. The format is a little-endian dump of the vertex/index
//! buffers and the camera's raw basis; decoding revalidates the mesh
//! through [`TriangleMesh::from_buffers`], so a corrupt artifact falls
//! back to a rebuild instead of producing garbage.

use crate::{Camera, Scene, SceneId, TriangleMesh, SCENE_IDS};
use rip_math::Vec3;

/// Bumped whenever the encoded layout changes; part of the header *and*
/// of the artifact cache key in `rip-exec`.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: [u8; 4] = *b"RSCN";

/// Encodes `scene` into a self-contained byte buffer.
pub fn encode(scene: &Scene) -> Vec<u8> {
    let positions = scene.mesh.positions();
    let indices = scene.mesh.indices();
    let (basis, width, height) = scene.camera.to_raw();
    let mut out = Vec::with_capacity(76 + positions.len() * 12 + indices.len() * 12);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    let scene_index = SCENE_IDS
        .iter()
        .position(|&id| id == scene.id)
        .expect("id in SCENE_IDS");
    out.extend_from_slice(&(scene_index as u32).to_le_bytes());
    out.extend_from_slice(&(positions.len() as u32).to_le_bytes());
    out.extend_from_slice(&(indices.len() as u32).to_le_bytes());
    for p in positions {
        put_vec3(&mut out, p);
    }
    for tri in indices {
        for &i in tri {
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
    for v in &basis {
        put_vec3(&mut out, v);
    }
    out.extend_from_slice(&width.to_le_bytes());
    out.extend_from_slice(&height.to_le_bytes());
    out
}

/// Decodes a buffer produced by [`encode`] and revalidates the mesh.
///
/// Any structural problem — wrong magic, foreign version, truncation, or
/// indices that fail mesh validation — is reported as `Err` so the caller
/// can regenerate the scene instead.
pub fn decode(bytes: &[u8]) -> Result<Scene, String> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != MAGIC {
        return Err("not a scene artifact (bad magic)".into());
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "scene artifact version {version}, expected {FORMAT_VERSION}"
        ));
    }
    let scene_index = r.u32()? as usize;
    let id: SceneId = *SCENE_IDS
        .get(scene_index)
        .ok_or_else(|| format!("scene index {scene_index} out of range"))?;
    let position_count = r.u32()? as usize;
    let index_count = r.u32()? as usize;

    // Guard the allocations below against a corrupt header: each position
    // and each index triple occupies 12 bytes, so the counts can never
    // promise more records than the buffer has bytes left.
    let promised = position_count
        .saturating_add(index_count)
        .saturating_mul(12);
    if promised > bytes.len().saturating_sub(r.at) {
        return Err(format!(
            "truncated scene artifact: header promises {position_count} positions and \
             {index_count} triangles but only {} bytes remain",
            bytes.len() - r.at
        ));
    }

    let mut positions = Vec::with_capacity(position_count);
    for _ in 0..position_count {
        positions.push(r.vec3()?);
    }
    let mut indices = Vec::with_capacity(index_count);
    for _ in 0..index_count {
        indices.push([r.u32()?, r.u32()?, r.u32()?]);
    }
    let basis = [r.vec3()?, r.vec3()?, r.vec3()?, r.vec3()?];
    let width = r.u32()?;
    let height = r.u32()?;
    if r.at != bytes.len() {
        return Err(format!(
            "{} trailing bytes after scene artifact",
            bytes.len() - r.at
        ));
    }
    if width == 0 || height == 0 {
        return Err("scene artifact has an empty viewport".into());
    }

    let mesh = TriangleMesh::from_buffers(positions, indices)
        .map_err(|e| format!("decoded mesh failed validation: {e}"))?;
    Ok(Scene {
        id,
        mesh,
        camera: Camera::from_raw(basis, width, height),
    })
}

fn put_vec3(out: &mut Vec<u8>, v: &Vec3) {
    out.extend_from_slice(&v.x.to_le_bytes());
    out.extend_from_slice(&v.y.to_le_bytes());
    out.extend_from_slice(&v.z.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err("truncated scene artifact".into()),
        }
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn vec3(&mut self) -> Result<Vec3, String> {
        Ok(Vec3::new(self.f32()?, self.f32()?, self.f32()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SceneScale;

    #[test]
    fn roundtrip_preserves_everything() {
        let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 32, 24);
        let decoded = decode(&encode(&scene)).unwrap();
        assert_eq!(decoded.id, scene.id);
        assert_eq!(decoded.mesh.positions(), scene.mesh.positions());
        assert_eq!(decoded.mesh.indices(), scene.mesh.indices());
        assert_eq!(decoded.camera, scene.camera);
    }

    #[test]
    fn reencode_is_byte_identical() {
        let scene = SceneId::FireplaceRoom.build_with_viewport(SceneScale::Tiny, 16, 16);
        let bytes = encode(&scene);
        assert_eq!(encode(&decode(&bytes).unwrap()), bytes);
    }

    #[test]
    fn rejects_bad_magic_version_truncation_and_index() {
        let scene = SceneId::LostEmpire.build_with_viewport(SceneScale::Tiny, 16, 16);
        let bytes = encode(&scene);

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode(&bad_magic).unwrap_err().contains("magic"));

        let mut bad_version = bytes.clone();
        bad_version[4] = 0xEE;
        assert!(decode(&bad_version).unwrap_err().contains("version"));

        assert!(decode(&bytes[..bytes.len() - 2])
            .unwrap_err()
            .contains("truncated"));

        let mut bad_index = bytes.clone();
        bad_index[8] = 0x33;
        assert!(decode(&bad_index).unwrap_err().contains("out of range"));
    }

    #[test]
    fn rejects_invalid_mesh_indices() {
        let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 16, 16);
        let mut bytes = encode(&scene);
        // Overwrite the first mesh index with an out-of-bounds vertex id.
        let first_index_at = 20 + scene.mesh.positions().len() * 12;
        bytes[first_index_at..first_index_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&bytes).is_err());
    }
}
