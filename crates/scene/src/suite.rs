//! The benchmark scene suite mirroring Table 1 of the paper.

use crate::{procedural, Camera, TriangleMesh};
use rip_math::Vec3;

/// Identifier for one of the seven benchmark scenes (Table 1).
///
/// Each variant builds a procedural analog of the corresponding original
/// model (see `DESIGN.md` §2 for the substitution rationale).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SceneId {
    /// Sibenik Cathedral analog (vaulted hall), ~75K triangles.
    Sibenik,
    /// Crytek Sponza analog (two-story atrium), ~262K triangles.
    CrytekSponza,
    /// Lost Empire analog (voxel terrain town), ~225K triangles.
    LostEmpire,
    /// Living Room analog, ~581K triangles.
    LivingRoom,
    /// Fireplace Room analog, ~143K triangles.
    FireplaceRoom,
    /// Bistro (Interior) analog, ~1M triangles.
    BistroInterior,
    /// Country Kitchen analog, ~1.4M triangles.
    CountryKitchen,
}

/// All seven scenes in Table-1 order.
pub const SCENE_IDS: [SceneId; 7] = [
    SceneId::Sibenik,
    SceneId::CrytekSponza,
    SceneId::LostEmpire,
    SceneId::LivingRoom,
    SceneId::FireplaceRoom,
    SceneId::BistroInterior,
    SceneId::CountryKitchen,
];

/// Geometry detail level.
///
/// Experiments run at three scales; shapes (relative orderings, rough
/// factors) are stable across them while absolute work scales by ~two
/// orders of magnitude.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SceneScale {
    /// ~1/256 of the paper triangle budget — unit/integration tests.
    Tiny,
    /// ~1/16 of the paper budget — default for local experiment runs.
    #[default]
    Quick,
    /// Full Table-1 triangle budgets.
    Paper,
}

impl SceneScale {
    /// Divisor applied to the paper triangle budget.
    pub fn divisor(self) -> usize {
        match self {
            SceneScale::Tiny => 256,
            SceneScale::Quick => 16,
            SceneScale::Paper => 1,
        }
    }

    /// Parses `"tiny" | "quick" | "paper"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(SceneScale::Tiny),
            "quick" => Some(SceneScale::Quick),
            "paper" => Some(SceneScale::Paper),
            _ => None,
        }
    }
}

/// A built benchmark scene: geometry plus a camera matching the scene's
/// intended interior viewpoint.
#[derive(Clone, Debug)]
pub struct Scene {
    /// Which benchmark this is.
    pub id: SceneId,
    /// The triangle geometry.
    pub mesh: TriangleMesh,
    /// Viewpoint used to generate primary rays.
    pub camera: Camera,
}

impl SceneId {
    /// The scene's short code used in the paper's figures (SB, SP, …).
    pub fn code(self) -> &'static str {
        match self {
            SceneId::Sibenik => "SB",
            SceneId::CrytekSponza => "SP",
            SceneId::LostEmpire => "LE",
            SceneId::LivingRoom => "LR",
            SceneId::FireplaceRoom => "FR",
            SceneId::BistroInterior => "BI",
            SceneId::CountryKitchen => "CK",
        }
    }

    /// Human-readable name as printed in Table 1.
    pub fn name(self) -> &'static str {
        match self {
            SceneId::Sibenik => "Sibenik",
            SceneId::CrytekSponza => "Crytek Sponza",
            SceneId::LostEmpire => "Lost Empire",
            SceneId::LivingRoom => "Living Room",
            SceneId::FireplaceRoom => "Fireplace Room",
            SceneId::BistroInterior => "Bistro (Interior)",
            SceneId::CountryKitchen => "Country Kitchen",
        }
    }

    /// Triangle count of the original model per Table 1.
    pub fn paper_triangles(self) -> usize {
        match self {
            SceneId::Sibenik => 75_000,
            SceneId::CrytekSponza => 262_000,
            SceneId::LostEmpire => 225_000,
            SceneId::LivingRoom => 581_000,
            SceneId::FireplaceRoom => 143_000,
            SceneId::BistroInterior => 1_000_000,
            SceneId::CountryKitchen => 1_400_000,
        }
    }

    /// BVH depth of the original model per Table 1 (for reference in the
    /// regenerated table).
    pub fn paper_bvh_depth(self) -> u32 {
        match self {
            SceneId::Sibenik => 23,
            SceneId::CrytekSponza => 23,
            SceneId::LostEmpire => 22,
            SceneId::LivingRoom => 23,
            SceneId::FireplaceRoom => 23,
            SceneId::BistroInterior => 25,
            SceneId::CountryKitchen => 27,
        }
    }

    /// AO rays traced in the paper (millions × 10⁶), per Table 1.
    pub fn paper_ao_rays(self) -> usize {
        match self {
            SceneId::Sibenik => 4_200_000,
            SceneId::CrytekSponza => 4_200_000,
            SceneId::LostEmpire => 3_900_000,
            SceneId::LivingRoom => 4_200_000,
            SceneId::FireplaceRoom => 4_200_000,
            SceneId::BistroInterior => 4_200_000,
            SceneId::CountryKitchen => 4_000_000,
        }
    }

    /// Deterministic seed for this scene's generator.
    pub fn seed(self) -> u64 {
        0x5EED_0000 + self as u64
    }

    /// Builds the procedural mesh at the given scale.
    pub fn build_mesh(self, scale: SceneScale) -> TriangleMesh {
        let budget = (self.paper_triangles() / scale.divisor()).max(500);
        let seed = self.seed();
        match self {
            SceneId::Sibenik => procedural::build_vaulted_hall(budget, seed),
            SceneId::CrytekSponza => procedural::build_atrium(budget, seed),
            SceneId::LostEmpire => procedural::build_voxel_terrain(budget, seed),
            SceneId::LivingRoom => procedural::build_living_room(budget, seed),
            SceneId::FireplaceRoom => procedural::build_fireplace_room(budget, seed),
            SceneId::BistroInterior => procedural::build_bistro_interior(budget, seed),
            SceneId::CountryKitchen => procedural::build_country_kitchen(budget, seed),
        }
    }

    /// Builds the scene (mesh plus camera) at the given scale, with a
    /// default 256×256 viewport. Use [`SceneId::build_with_viewport`] to
    /// control resolution.
    pub fn build(self, scale: SceneScale) -> Scene {
        self.build_with_viewport(scale, 256, 256)
    }

    /// Builds the scene with an explicit viewport resolution.
    pub fn build_with_viewport(self, scale: SceneScale, width: u32, height: u32) -> Scene {
        let mesh = self.build_mesh(scale);
        let bounds = mesh.bounds();
        let center = bounds.center();
        // Interior viewpoint: stand inside the volume near a corner at
        // standing height, look across the room.
        let eye =
            bounds.min + bounds.diagonal() * Vec3::new(0.18, 0.45, 0.22) + Vec3::new(0.0, 0.0, 0.0);
        let target = Vec3::new(
            center.x,
            bounds.min.y + bounds.diagonal().y * 0.35,
            center.z,
        );
        let camera = Camera::look_at(eye, target, Vec3::Y, 65.0, width, height);
        Scene {
            id: self,
            mesh,
            camera,
        }
    }
}

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_build_at_tiny_scale() {
        for id in SCENE_IDS {
            let scene = id.build(SceneScale::Tiny);
            assert!(
                scene.mesh.triangle_count() >= 300,
                "{id} produced only {}",
                scene.mesh.triangle_count()
            );
            scene.mesh.validate().unwrap();
        }
    }

    #[test]
    fn quick_scale_tracks_paper_ratios() {
        let kitchen = SceneId::CountryKitchen
            .build_mesh(SceneScale::Tiny)
            .triangle_count();
        let hall = SceneId::Sibenik
            .build_mesh(SceneScale::Tiny)
            .triangle_count();
        assert!(
            kitchen > hall,
            "kitchen ({kitchen}) should out-detail the hall ({hall})"
        );
    }

    #[test]
    fn camera_sits_inside_scene_bounds() {
        for id in SCENE_IDS {
            let scene = id.build(SceneScale::Tiny);
            let b = scene.mesh.bounds();
            assert!(
                b.contains_point(scene.camera.position()),
                "{id} camera escaped the scene"
            );
        }
    }

    #[test]
    fn codes_and_names_are_unique() {
        let mut codes: Vec<_> = SCENE_IDS.iter().map(|s| s.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 7);
    }

    #[test]
    fn scale_parse_round_trip() {
        assert_eq!(SceneScale::parse("tiny"), Some(SceneScale::Tiny));
        assert_eq!(SceneScale::parse("QUICK"), Some(SceneScale::Quick));
        assert_eq!(SceneScale::parse("Paper"), Some(SceneScale::Paper));
        assert_eq!(SceneScale::parse("huge"), None);
    }

    #[test]
    fn builds_are_deterministic() {
        let a = SceneId::LivingRoom.build_mesh(SceneScale::Tiny);
        let b = SceneId::LivingRoom.build_mesh(SceneScale::Tiny);
        assert_eq!(a, b);
    }
}
