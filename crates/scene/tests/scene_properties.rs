//! Property-based tests for the scene substrate: mesh invariants under
//! transforms, OBJ round-tripping, and suite-wide guarantees.

use proptest::prelude::*;
use rip_math::Vec3;
use rip_scene::{obj, TriangleMesh, SCENE_IDS};

fn vec3s(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (-50.0f32..50.0, -50.0f32..50.0, -50.0f32..50.0).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        n,
    )
}

proptest! {
    #[test]
    fn triangle_soup_mesh_always_validates(points in vec3s(3..120)) {
        let mut mesh = TriangleMesh::new();
        for chunk in points.chunks_exact(3) {
            mesh.push_triangle(chunk[0], chunk[1], chunk[2]);
        }
        prop_assert!(mesh.validate().is_ok());
        prop_assert_eq!(mesh.triangle_count(), points.len() / 3);
        // Bounds contain every vertex.
        let bounds = mesh.bounds();
        for &p in mesh.positions() {
            prop_assert!(bounds.contains_point(p));
        }
    }

    #[test]
    fn translation_preserves_surface_area(
        points in vec3s(3..60),
        dx in -10.0f32..10.0, dy in -10.0f32..10.0, dz in -10.0f32..10.0,
    ) {
        let mut mesh = TriangleMesh::new();
        for chunk in points.chunks_exact(3) {
            mesh.push_triangle(chunk[0], chunk[1], chunk[2]);
        }
        let before = mesh.surface_area();
        mesh.translate(Vec3::new(dx, dy, dz));
        let after = mesh.surface_area();
        prop_assert!((before - after).abs() <= 1e-3 * (1.0 + before),
            "translation changed area: {before} -> {after}");
    }

    #[test]
    fn rotation_preserves_surface_area(points in vec3s(3..60), angle in 0.0f32..6.3) {
        let mut mesh = TriangleMesh::new();
        for chunk in points.chunks_exact(3) {
            mesh.push_triangle(chunk[0], chunk[1], chunk[2]);
        }
        let before = mesh.surface_area();
        mesh.rotate_y(angle);
        let after = mesh.surface_area();
        prop_assert!((before - after).abs() <= 1e-2 * (1.0 + before));
    }

    #[test]
    fn merge_is_additive(a in vec3s(3..30), b in vec3s(3..30)) {
        let mut ma = TriangleMesh::new();
        for chunk in a.chunks_exact(3) {
            ma.push_triangle(chunk[0], chunk[1], chunk[2]);
        }
        let mut mb = TriangleMesh::new();
        for chunk in b.chunks_exact(3) {
            mb.push_triangle(chunk[0], chunk[1], chunk[2]);
        }
        let (ta, tb) = (ma.triangle_count(), mb.triangle_count());
        let union_bounds = ma.bounds().union(&mb.bounds());
        ma.merge(&mb);
        prop_assert_eq!(ma.triangle_count(), ta + tb);
        prop_assert!(ma.validate().is_ok());
        prop_assert_eq!(ma.bounds(), union_bounds);
    }

    #[test]
    fn obj_round_trip_is_lossless_enough(points in vec3s(3..45)) {
        let mut mesh = TriangleMesh::new();
        for chunk in points.chunks_exact(3) {
            mesh.push_triangle(chunk[0], chunk[1], chunk[2]);
        }
        let mut buf = Vec::new();
        obj::write_obj(&mesh, &mut buf).unwrap();
        let back = obj::read_obj(buf.as_slice()).unwrap();
        prop_assert_eq!(back.triangle_count(), mesh.triangle_count());
        for (a, b) in mesh.triangles().zip(back.triangles()) {
            prop_assert!((a.a - b.a).length() < 1e-3);
            prop_assert!((a.b - b.b).length() < 1e-3);
            prop_assert!((a.c - b.c).length() < 1e-3);
        }
    }
}

#[test]
fn every_scene_scales_monotonically() {
    use rip_scene::SceneScale;
    for id in SCENE_IDS {
        let tiny = id.build_mesh(SceneScale::Tiny).triangle_count();
        let quick = id.build_mesh(SceneScale::Quick).triangle_count();
        assert!(
            quick > tiny,
            "{id}: quick ({quick}) must out-detail tiny ({tiny})"
        );
    }
}

#[test]
fn scene_cameras_see_geometry() {
    use rip_scene::SceneScale;
    // Every scene's central primary ray should point at finite geometry —
    // the AO workload depends on primary hits existing.
    for id in SCENE_IDS {
        let scene = id.build(SceneScale::Tiny);
        let ray = scene.camera.ray_through(0.5, 0.5);
        let hit = scene.mesh.triangles().any(|t| t.intersects(&ray));
        assert!(hit, "{id}: camera stares into the void");
    }
}
