//! Round-trip guarantees for the scene artifact format: decode(encode(s))
//! reproduces the scene and re-encodes byte-identically, and damaged
//! buffers always come back as `Err`, never a panic.
//!
//! Since format v2 the artifact is a RIPA container, so bit integrity
//! is enforced by the container checksums; structural attacks need a
//! rebuilt container with intact checksums (see the in-crate tests).

use rip_math::Vec3;
use rip_scene::{serial, Camera, Scene, SceneId, SceneScale, TriangleMesh, SCENE_IDS};

fn camera(width: u32, height: u32) -> Camera {
    Camera::look_at(
        Vec3::new(3.0, 2.0, -5.0),
        Vec3::ZERO,
        Vec3::Y,
        55.0,
        width,
        height,
    )
}

fn assert_byte_stable(scene: &Scene) {
    let first = serial::encode(scene);
    let decoded = serial::decode(&first).expect("decode of a fresh encode");
    assert_eq!(decoded.id, scene.id);
    assert_eq!(decoded.mesh.positions(), scene.mesh.positions());
    assert_eq!(decoded.mesh.indices(), scene.mesh.indices());
    assert_eq!(decoded.camera.width(), scene.camera.width());
    assert_eq!(decoded.camera.height(), scene.camera.height());
    let second = serial::encode(&decoded);
    assert_eq!(first, second, "re-encode must be byte-identical");
}

#[test]
fn every_scene_round_trips_byte_identically_at_tiny_scale() {
    for id in SCENE_IDS {
        let scene = id.build_with_viewport(SceneScale::Tiny, 24, 16);
        assert_byte_stable(&scene);
    }
}

#[test]
fn empty_mesh_round_trips() {
    let scene = Scene {
        id: SceneId::Sibenik,
        mesh: TriangleMesh::new(),
        camera: camera(8, 8),
    };
    assert_byte_stable(&scene);
    let decoded = serial::decode(&serial::encode(&scene)).unwrap();
    assert_eq!(decoded.mesh.triangle_count(), 0);
}

#[test]
fn single_triangle_round_trips() {
    let mesh =
        TriangleMesh::from_buffers(vec![Vec3::ZERO, Vec3::X, Vec3::Y], vec![[0, 1, 2]]).unwrap();
    let scene = Scene {
        id: SceneId::CountryKitchen,
        mesh,
        camera: camera(8, 8),
    };
    assert_byte_stable(&scene);
    let decoded = serial::decode(&serial::encode(&scene)).unwrap();
    assert_eq!(decoded.mesh.triangle_count(), 1);
}

#[test]
fn every_truncation_prefix_errors_without_panicking() {
    let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 12, 12);
    let bytes = serial::encode(&scene);
    for len in 0..bytes.len() {
        assert!(
            serial::decode(&bytes[..len]).is_err(),
            "prefix of {len}/{} bytes must not decode",
            bytes.len()
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 12, 12);
    let mut bytes = serial::encode(&scene);
    bytes.push(0);
    assert!(
        serial::decode(&bytes).is_err(),
        "extra byte must not decode"
    );
}

#[test]
fn header_bomb_is_rejected_before_allocation() {
    let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 12, 12);
    let mut bytes = serial::encode(&scene);
    // The section count lives at bytes 8..12; promise ~4 billion
    // sections. The parser must refuse before allocating for them.
    bytes[8..12].copy_from_slice(&u32::MAX.to_ne_bytes());
    let err = serial::decode(&bytes).unwrap_err();
    assert!(err.contains("section count"), "got: {err}");
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 12, 12);
    let good = serial::encode(&scene);

    let mut bad_magic = good.clone();
    bad_magic[0] = b'X';
    assert!(serial::decode(&bad_magic).unwrap_err().contains("magic"));

    let mut bad_version = good;
    bad_version[4..8].copy_from_slice(&(rip_pod::ripa::CONTAINER_VERSION + 1).to_ne_bytes());
    assert!(serial::decode(&bad_version)
        .unwrap_err()
        .contains("version"));
}

#[test]
fn single_byte_flips_are_always_detected() {
    let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 12, 12);
    let bytes = serial::encode(&scene);
    for at in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[at] ^= 0x01;
        assert!(
            serial::decode(&bad).is_err(),
            "flip at byte {at} went undetected"
        );
    }
}
