//! Admission control: per-tenant token buckets and a queue-age
//! estimator.
//!
//! Admission is the cheapest place to refuse work: a request rejected
//! here costs a hash-map lookup, one rejected at the queue costs an
//! allocation, and one expired at dispatch costs a full queue
//! round-trip. Two mechanisms run at admission, both deterministic
//! given the service clock:
//!
//! * **Token bucket** per tenant — `rate` tokens/second refilled
//!   continuously, holding at most `burst`. A tenant submitting faster
//!   than its contracted rate sees [`Rejection::RateLimited`] with a
//!   computed `retry_after_us` instead of silently filling the shared
//!   dispatch rounds. Rate `0` disables the bucket (the default — the
//!   seed service had no admission contract, and tests rely on that).
//! * **Queue-age estimate** — an EWMA of request service time
//!   (admission → completion) times the number of queued requests
//!   ahead. A deadline the estimate already rules out is rejected as
//!   [`Rejection::DeadlineUnmeetable`] rather than queued as dead work.
//!   The estimate is intentionally conservative only about *obviously*
//!   hopeless deadlines: with no completed requests yet there is no
//!   estimate and only already-passed deadlines are refused.
//!
//! [`Rejection::RateLimited`]: crate::Rejection::RateLimited
//! [`Rejection::DeadlineUnmeetable`]: crate::Rejection::DeadlineUnmeetable

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Admission knobs for a service (see module docs).
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Sustained admission rate per tenant, requests/second. `0.0`
    /// disables rate limiting entirely.
    pub rate_per_tenant: f64,
    /// Token-bucket burst capacity (tokens; min 1 when rate limiting is
    /// on).
    pub burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            rate_per_tenant: 0.0,
            burst: 8.0,
        }
    }
}

/// One tenant's token bucket, refilled lazily from clock readings.
#[derive(Debug)]
struct Bucket {
    /// Tokens available (at `last_us`).
    tokens: f64,
    /// Clock reading of the last refill.
    last_us: u64,
}

/// Per-tenant token buckets plus the shared service-time estimator.
#[derive(Debug)]
pub struct AdmissionControl {
    config: AdmissionConfig,
    buckets: Vec<Mutex<Bucket>>,
    /// EWMA of request service time (admission → completion), µs,
    /// fixed-point (stored as µs; 0 = no samples yet).
    ewma_service_us: AtomicU64,
}

impl AdmissionControl {
    /// Admission state for `tenants` clients under `config`.
    pub fn new(tenants: usize, config: AdmissionConfig) -> Self {
        AdmissionControl {
            config,
            buckets: (0..tenants.max(1))
                .map(|_| {
                    Mutex::new(Bucket {
                        tokens: config.burst.max(1.0),
                        last_us: 0,
                    })
                })
                .collect(),
            ewma_service_us: AtomicU64::new(0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Takes one token from `tenant`'s bucket at clock reading
    /// `now_us`. `Ok` admits; `Err(retry_after_us)` is the clock budget
    /// until a token will exist.
    pub fn take_token(&self, tenant: usize, now_us: u64) -> Result<(), u64> {
        let rate = self.config.rate_per_tenant;
        if rate <= 0.0 {
            return Ok(());
        }
        let burst = self.config.burst.max(1.0);
        let mut bucket = self.buckets[tenant]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        let elapsed_us = now_us.saturating_sub(bucket.last_us);
        bucket.tokens = (bucket.tokens + elapsed_us as f64 * rate / 1e6).min(burst);
        bucket.last_us = now_us;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            Err((deficit * 1e6 / rate).ceil() as u64)
        }
    }

    /// Records one completed request's service time (admission →
    /// completion) into the EWMA (α = 1/8).
    pub fn observe_service_us(&self, service_us: u64) {
        // Racy read-modify-write is fine: this is a smoothing estimate,
        // not an invariant counter.
        let old = self.ewma_service_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            service_us.max(1)
        } else {
            (old - old / 8 + service_us / 8).max(1)
        };
        self.ewma_service_us.store(new, Ordering::Relaxed);
    }

    /// The current service-time estimate (µs; 0 until a request has
    /// completed).
    pub fn estimated_service_us(&self) -> u64 {
        self.ewma_service_us.load(Ordering::Relaxed)
    }

    /// Estimated completion time (clock µs) for a request admitted at
    /// `now_us` with `queued_ahead` requests already pending.
    pub fn estimated_done_us(&self, now_us: u64, queued_ahead: usize) -> u64 {
        now_us.saturating_add(
            self.estimated_service_us()
                .saturating_mul(queued_ahead.saturating_add(1) as u64),
        )
    }

    /// Whether a request with absolute `deadline_us` admitted at
    /// `now_us` behind `queued_ahead` requests is already hopeless.
    /// Returns the offending estimate when it is.
    pub fn deadline_unmeetable(
        &self,
        now_us: u64,
        queued_ahead: usize,
        deadline_us: u64,
    ) -> Option<u64> {
        let estimated = self.estimated_done_us(now_us, queued_ahead);
        (deadline_us < estimated).then_some(estimated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_disables_the_bucket() {
        let admission = AdmissionControl::new(1, AdmissionConfig::default());
        for now in 0..100 {
            assert!(admission.take_token(0, now).is_ok());
        }
    }

    #[test]
    fn bucket_empties_and_refills_on_schedule() {
        let admission = AdmissionControl::new(
            2,
            AdmissionConfig {
                rate_per_tenant: 1.0, // 1 req/s = 1 token per 1e6 µs
                burst: 2.0,
            },
        );
        assert!(admission.take_token(0, 0).is_ok());
        assert!(admission.take_token(0, 0).is_ok());
        let retry = admission.take_token(0, 0).unwrap_err();
        assert_eq!(retry, 1_000_000, "one full token must regenerate");
        // Tenant buckets are independent.
        assert!(admission.take_token(1, 0).is_ok());
        // Half a second later: still a fractional token short.
        let retry = admission.take_token(0, 500_000).unwrap_err();
        assert_eq!(retry, 500_000);
        // A full second after the empty-bucket read: admitted again.
        assert!(admission.take_token(0, 1_500_000).is_ok());
    }

    #[test]
    fn deadline_estimate_needs_history() {
        let admission = AdmissionControl::new(1, AdmissionConfig::default());
        // No completed requests: only the trivial estimate (now) exists,
        // so any future deadline is admitted.
        assert_eq!(admission.deadline_unmeetable(100, 50, 101), None);
        assert_eq!(
            admission.deadline_unmeetable(100, 0, 99),
            Some(100),
            "a deadline already in the past is always unmeetable"
        );
        admission.observe_service_us(40);
        assert_eq!(admission.estimated_service_us(), 40);
        // 3 queued ahead + self = 4 * 40 µs = done at now+160.
        assert_eq!(admission.estimated_done_us(1000, 3), 1160);
        assert_eq!(admission.deadline_unmeetable(1000, 3, 1100), Some(1160));
        assert_eq!(admission.deadline_unmeetable(1000, 3, 1160), None);
    }

    #[test]
    fn ewma_converges_toward_recent_samples() {
        let admission = AdmissionControl::new(1, AdmissionConfig::default());
        admission.observe_service_us(800);
        for _ in 0..64 {
            admission.observe_service_us(100);
        }
        let est = admission.estimated_service_us();
        assert!(est < 200, "EWMA stuck high: {est}");
        assert!(est >= 87, "EWMA must stay near the steady state: {est}");
    }
}
