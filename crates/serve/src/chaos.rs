//! Deterministic chaos injection for the service's trace workers.
//!
//! Two complementary entry points, both funnelled through
//! [`apply_chunk_injections`] at the top of every chunk attempt:
//!
//! * **Targeted** — the PR 3 `RIP_FAULT_INJECT` plan reaches serve's
//!   workers under the unit label `serve_chunk`: `panic:serve_chunk`,
//!   `slow:serve_chunk=<ms>` and `flaky:serve_chunk=<attempts>` behave
//!   exactly as they do for experiment units (every chunk, every
//!   round). This is the CI hook for exercising a *specific* failure
//!   path.
//! * **Probabilistic** — [`ChaosConfig`] injects panic/slow/flaky
//!   faults into a seeded pseudo-random *fraction* of chunks, the
//!   `chaos_bench` workload. Selection hashes `(seed, round, chunk)`
//!   with the same FNV the retry jitter uses, so a given seed fails the
//!   exact same chunks run after run — a chaos experiment that cannot
//!   be replayed is a flake generator, not a test.
//!
//! Fault categories are drawn from disjoint slices of one hash draw
//! (panic first, then slow, then flaky), so rates compose without a
//! chunk being double-injected.

use rip_exec::{Fault, InjectionPlan};
use std::time::Duration;

/// Probabilistic fault plan for trace chunks (all rates default 0 =
/// chaos off).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChaosConfig {
    /// Fraction of chunks that panic (0.0–1.0).
    pub panic_rate: f64,
    /// Attempts on which a panic-selected chunk panics (0 is treated as
    /// 1: the first attempt crashes, retries succeed — a transient
    /// worker death). Set at or above the retry budget to model a
    /// permanently poisoned chunk.
    pub panic_attempts: u32,
    /// Fraction of chunk attempts delayed by [`ChaosConfig::slow_ms`].
    pub slow_rate: f64,
    /// Injected delay for slow chunks, milliseconds.
    pub slow_ms: u64,
    /// Fraction of chunks whose first
    /// [`ChaosConfig::flaky_attempts`] attempts fail retryably.
    pub flaky_rate: f64,
    /// Failing attempts per flaky chunk.
    pub flaky_attempts: u32,
    /// Selection seed (same seed → same injected chunks).
    pub seed: u64,
}

impl ChaosConfig {
    /// Whether any injection is configured.
    pub fn is_active(&self) -> bool {
        self.panic_rate > 0.0 || self.slow_rate > 0.0 || self.flaky_rate > 0.0
    }

    /// The uniform draw in `[0, 1)` selecting chunk `(round, chunk)`.
    fn draw(&self, round: u64, chunk: u64) -> f64 {
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.seed.to_le_bytes());
        bytes[8..16].copy_from_slice(&round.to_le_bytes());
        bytes[16..].copy_from_slice(&chunk.to_le_bytes());
        // Top 53 bits of the FNV hash → uniform f64 in [0, 1).
        (fnv64(&bytes) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Applies this plan to attempt `attempt` (1-based) of chunk
    /// `(round, chunk)`: panics, sleeps, or returns a retryable fault
    /// per the configured rates.
    pub fn apply(&self, round: u64, chunk: u64, attempt: u32) -> Result<(), Fault> {
        if !self.is_active() {
            return Ok(());
        }
        let draw = self.draw(round, chunk);
        if draw < self.panic_rate {
            if attempt <= self.panic_attempts.max(1) {
                panic!("chaos: injected panic in round {round} chunk {chunk} (attempt {attempt})");
            }
            return Ok(());
        }
        if draw < self.panic_rate + self.slow_rate {
            std::thread::sleep(Duration::from_millis(self.slow_ms));
            return Ok(());
        }
        if draw < self.panic_rate + self.slow_rate + self.flaky_rate
            && attempt <= self.flaky_attempts.max(1)
        {
            return Err(Fault::retryable(format!(
                "chaos: injected transient fault in round {round} chunk {chunk} \
                 (attempt {attempt} of {} injected failures)",
                self.flaky_attempts.max(1)
            )));
        }
        Ok(())
    }
}

/// FNV-1a 64-bit (the deterministic hash the exec retry jitter uses).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The unit label under which `RIP_FAULT_INJECT` directives reach
/// serve's trace workers.
pub const CHUNK_INJECT_LABEL: &str = "serve_chunk";

/// The unit label under which `RIP_FAULT_INJECT` directives reach
/// `SceneRegistry::try_reload` (the circuit-breaker path).
pub const RELOAD_INJECT_LABEL: &str = "serve_reload";

/// Runs every injection aimed at one chunk attempt: the targeted
/// `RIP_FAULT_INJECT` plan first (deterministic, all chunks), then the
/// probabilistic [`ChaosConfig`].
pub fn apply_chunk_injections(
    plan: &InjectionPlan,
    chaos: &ChaosConfig,
    round: u64,
    chunk: u64,
    attempt: u32,
) -> Result<(), Fault> {
    plan.apply(CHUNK_INJECT_LABEL, attempt)?;
    chaos.apply(round, chunk, attempt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_exec::FaultKind;

    #[test]
    fn inactive_chaos_is_a_no_op() {
        let chaos = ChaosConfig::default();
        assert!(!chaos.is_active());
        for chunk in 0..64 {
            assert!(chaos.apply(0, chunk, 1).is_ok());
        }
    }

    #[test]
    fn selection_is_deterministic_and_near_rate() {
        let chaos = ChaosConfig {
            flaky_rate: 0.25,
            flaky_attempts: 1,
            seed: 42,
            ..ChaosConfig::default()
        };
        let failed: Vec<u64> = (0..400)
            .filter(|&c| chaos.apply(3, c, 1).is_err())
            .collect();
        let again: Vec<u64> = (0..400)
            .filter(|&c| chaos.apply(3, c, 1).is_err())
            .collect();
        assert_eq!(failed, again, "same seed must fail the same chunks");
        let rate = failed.len() as f64 / 400.0;
        assert!((rate - 0.25).abs() < 0.08, "observed rate {rate}");
        // A different seed picks a different set.
        let other = ChaosConfig { seed: 43, ..chaos };
        let other_failed: Vec<u64> = (0..400)
            .filter(|&c| other.apply(3, c, 1).is_err())
            .collect();
        assert_ne!(failed, other_failed);
    }

    #[test]
    fn flaky_chunks_clear_after_their_attempts() {
        let chaos = ChaosConfig {
            flaky_rate: 1.0,
            flaky_attempts: 2,
            seed: 7,
            ..ChaosConfig::default()
        };
        let fault = chaos.apply(0, 0, 1).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Retryable);
        assert!(chaos.apply(0, 0, 2).is_err());
        assert!(chaos.apply(0, 0, 3).is_ok(), "attempt 3 must succeed");
    }

    #[test]
    #[should_panic(expected = "chaos: injected panic")]
    fn panic_rate_one_panics_every_chunk() {
        let chaos = ChaosConfig {
            panic_rate: 1.0,
            seed: 1,
            ..ChaosConfig::default()
        };
        let _ = chaos.apply(0, 0, 1);
    }

    #[test]
    fn transient_panics_clear_on_retry() {
        let chaos = ChaosConfig {
            panic_rate: 1.0,
            panic_attempts: 1,
            seed: 1,
            ..ChaosConfig::default()
        };
        assert!(
            chaos.apply(0, 0, 2).is_ok(),
            "a transient panic must not fire again on the retry"
        );
    }

    #[test]
    fn env_plan_reaches_serve_chunk_label() {
        let plan = InjectionPlan::parse("flaky:serve_chunk=1; panic:other_unit");
        let chaos = ChaosConfig::default();
        let fault = apply_chunk_injections(&plan, &chaos, 0, 0, 1).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Retryable);
        assert!(apply_chunk_injections(&plan, &chaos, 0, 0, 2).is_ok());
    }
}
