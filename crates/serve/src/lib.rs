//! Ray-tracing-as-a-service over the intersection-predictor stack.
//!
//! The paper's predictor (§3–§4) exploits ray locality *across* rays;
//! a service multiplexing many tenants over one scene multiplies that
//! locality — every tenant's traffic trains the table every other
//! tenant predicts from. This crate is the ROADMAP's service-layer
//! step: the long-lived, concurrent front-end the single-shot CLI
//! experiments cannot express.
//!
//! The pieces, designed around immutability, bounded queues, and typed
//! failure:
//!
//! * [`SceneRegistry`] — epoch-based immutable scene/BVH leases backed
//!   by the shared `rip-exec` [`CaseCache`](rip_exec::CaseCache);
//!   reloads publish a new epoch, never mutate in place, and
//!   [`SceneRegistry::try_reload`] survives failed rebuilds behind a
//!   circuit breaker.
//! * [`ConcurrentPredictorTable`](rip_core::ConcurrentPredictorTable)
//!   (from `rip-core`) — the lock-striped shared table behind
//!   [`SharedTable`](rip_core::SharedTable), driven here by per-chunk
//!   [`Predicted`](rip_core::Predicted) kernels.
//! * [`RayService`] — admission control ([`AdmissionConfig`]) and
//!   deadlines in front of bounded per-tenant queues with typed
//!   [`Rejection`]s, round-robin fairness, per-class coalescing into
//!   Morton-sorted [`RayBatch`](rip_bvh::RayBatch) streams,
//!   fault-isolated chunk tracing over the `rip-exec`
//!   [`JobPool`](rip_exec::JobPool), and per-class latency
//!   [`Histogram`](rip_obs::Histogram)s.
//! * [`ServiceMode`] — the graceful-degradation ladder
//!   (`Full → NoPredict → Survival`) driven by windowed round health.
//! * [`ChaosConfig`] — deterministic probabilistic fault injection into
//!   trace chunks, composing with the `RIP_FAULT_INJECT` plan under the
//!   `serve_chunk` / `serve_reload` labels; feeds the `chaos_bench`
//!   harness and `BENCH_chaos.json`.
//! * [`loadgen`] — synthetic multi-tenant *open-loop* load generation
//!   (absolute schedules, shed-on-full, optional per-request deadlines)
//!   feeding the `serve_bench` binary and `BENCH_serve.json`.
//!
//! See DESIGN.md §9–§10 for the architecture rationale and
//! EXPERIMENTS.md for the `serve_bench` / `chaos_bench` knobs.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod admission;
mod chaos;
pub mod loadgen;
mod mode;
mod queue;
mod registry;
mod service;

pub use admission::{AdmissionConfig, AdmissionControl};
pub use chaos::{apply_chunk_injections, ChaosConfig, CHUNK_INJECT_LABEL, RELOAD_INJECT_LABEL};
pub use loadgen::{ClassReport, LoadGenConfig, LoadReport};
pub use mode::{DegradeConfig, ModeController, ModeTransition, ServiceMode};
pub use queue::{Backpressure, Rejection, Request, RequestClass, TenantQueue};
pub use registry::{BreakerConfig, ReloadError, SceneLease, SceneRegistry};
pub use service::{ClassStats, RayService, RoundReport, ServiceConfig, ServiceStats};
