//! Ray-tracing-as-a-service over the intersection-predictor stack.
//!
//! The paper's predictor (§3–§4) exploits ray locality *across* rays;
//! a service multiplexing many tenants over one scene multiplies that
//! locality — every tenant's traffic trains the table every other
//! tenant predicts from. This crate is the ROADMAP's service-layer
//! step: the long-lived, concurrent front-end the single-shot CLI
//! experiments cannot express.
//!
//! Four pieces, designed around immutability and bounded queues:
//!
//! * [`SceneRegistry`] — epoch-based immutable scene/BVH leases backed
//!   by the shared `rip-exec` [`CaseCache`](rip_exec::CaseCache);
//!   reloads publish a new epoch, never mutate in place.
//! * [`ConcurrentPredictorTable`](rip_core::ConcurrentPredictorTable)
//!   (from `rip-core`) — the lock-striped shared table behind
//!   [`SharedTable`](rip_core::SharedTable), driven here by per-chunk
//!   [`Predicted`](rip_core::Predicted) kernels.
//! * [`RayService`] — bounded per-tenant queues with [`Backpressure`],
//!   round-robin fairness, per-class coalescing into Morton-sorted
//!   [`RayBatch`](rip_bvh::RayBatch) streams, chunked tracing over the
//!   `rip-exec` [`JobPool`](rip_exec::JobPool), and per-class latency
//!   [`Histogram`](rip_obs::Histogram)s.
//! * [`loadgen`] — synthetic multi-tenant *open-loop* load generation
//!   (absolute schedules, shed-on-full) feeding the `serve_bench`
//!   binary and `BENCH_serve.json`.
//!
//! See DESIGN.md §9 for the architecture rationale and EXPERIMENTS.md
//! for the `serve_bench` knobs.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod loadgen;
mod queue;
mod registry;
mod service;

pub use loadgen::{ClassReport, LoadGenConfig, LoadReport};
pub use queue::{Backpressure, Request, RequestClass, TenantQueue};
pub use registry::{SceneLease, SceneRegistry};
pub use service::{ClassStats, RayService, RoundReport, ServiceConfig, ServiceStats};
