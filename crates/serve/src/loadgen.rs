//! Synthetic multi-tenant open-loop load generation.
//!
//! Open-loop means submission times come from an absolute schedule
//! (request *i* of a tenant is due at `start + i / rate`), not from the
//! service's completion pace — the standard methodology for measuring
//! tail latency honestly: a slow service falls behind the schedule and
//! the backlog shows up as queueing latency and shed requests, instead
//! of the generator politely slowing down (coordinated omission).
//!
//! Each tenant thread mixes the three [`RequestClass`]es round-robin
//! and synthesizes class-appropriate rays from the leased scene:
//! camera primaries, hemisphere AO probes, and point-light shadow
//! segments. When [`LoadGenConfig::deadline`] is set, every request
//! carries an absolute service-clock deadline and the report's
//! [`LoadReport::availability`] is the SLO the chaos harness gates on.
//! A dispatcher loop (the calling thread) drains the service until the
//! schedule ends and the queues are empty.

use crate::mode::ServiceMode;
use crate::queue::{Rejection, RequestClass};
use crate::service::{ClassStats, RayService};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_bvh::RayBatch;
use rip_exec::Case;
use rip_math::{Ray, Vec3};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Clone, Copy, Debug)]
pub struct LoadGenConfig {
    /// Logical clients submitting concurrently.
    pub tenants: usize,
    /// Open-loop request rate per tenant (requests/second).
    pub rate: f64,
    /// Rays per request.
    pub rays_per_request: usize,
    /// How long tenants keep submitting.
    pub duration: Duration,
    /// Relative deadline attached to every request (`None` = no
    /// deadlines, the pre-robustness behaviour).
    pub deadline: Option<Duration>,
    /// Base RNG seed (tenant `t` uses `seed + t`).
    pub seed: u64,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            tenants: 2,
            rate: 50.0,
            rays_per_request: 256,
            duration: Duration::from_secs(2),
            deadline: None,
            seed: 0x5EED,
        }
    }
}

/// Per-class slice of a [`LoadReport`].
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// Which class.
    pub class: RequestClass,
    /// Requests completed.
    pub requests: u64,
    /// Rays traced.
    pub rays: u64,
    /// Rays that hit geometry.
    pub hits: u64,
    /// Completed requests that finished past their deadline.
    pub deadline_miss: u64,
    /// Requests dropped at dispatch with an expired deadline.
    pub expired: u64,
    /// Requests failed by an unrecovered chunk fault.
    pub failed: u64,
    /// Requests shed by backpressure.
    pub shed: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
}

impl ClassReport {
    fn from_stats(class: RequestClass, stats: &ClassStats) -> Self {
        ClassReport {
            class,
            requests: stats.requests,
            rays: stats.rays,
            hits: stats.hits,
            deadline_miss: stats.deadline_miss,
            expired: stats.expired,
            failed: stats.failed,
            shed: stats.shed,
            p50_us: stats.latency_us.p50(),
            p95_us: stats.latency_us.p95(),
            p99_us: stats.latency_us.p99(),
            max_us: stats.latency_us.max(),
            mean_us: stats.latency_us.mean(),
        }
    }
}

/// The outcome of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Wall-clock time from first submission to final drain.
    pub wall: Duration,
    /// Requests completed across all classes (on time or not).
    pub completed_requests: u64,
    /// Rays traced across all classes.
    pub completed_rays: u64,
    /// Requests shed by backpressure.
    pub shed_requests: u64,
    /// Requests refused by the admission token bucket.
    pub rate_limited: u64,
    /// Requests refused with an unmeetable deadline at admission.
    pub rejected_unmeetable: u64,
    /// Queued requests dropped at dispatch with an expired deadline.
    pub expired_requests: u64,
    /// Requests failed by an unrecovered chunk fault.
    pub failed_requests: u64,
    /// Completed requests that finished past their deadline.
    pub deadline_miss_requests: u64,
    /// Requests the schedule wanted to submit (admitted + every
    /// rejection).
    pub offered_requests: u64,
    /// The SLO: requests completed within deadline over offered
    /// requests (1.0 when nothing was offered).
    pub availability: f64,
    /// Chunk attempts that were retries.
    pub retried_chunks: u64,
    /// Mode-ladder transitions taken during the run.
    pub mode_transitions: u64,
    /// Rounds spent in each mode, [`ServiceMode::ALL`] order.
    pub mode_rounds: [u64; 3],
    /// The mode the service ended the run in.
    pub final_mode: ServiceMode,
    /// Request failures by fault kind,
    /// [`FaultKind::ALL`](rip_exec::FaultKind::ALL) order.
    pub faults_by_kind: [u64; 6],
    /// Sustained throughput over the wall-clock window.
    pub rays_per_sec: f64,
    /// Dispatch rounds the drain loop executed.
    pub rounds: u64,
    /// Per-class accounting in [`RequestClass::ALL`] order.
    pub classes: Vec<ClassReport>,
}

/// Synthesizes `n` class-appropriate rays for `case`.
pub fn synthesize_rays(case: &Case, class: RequestClass, n: usize, rng: &mut SmallRng) -> RayBatch {
    let bounds = case.bvh.bounds();
    let diag = bounds.diagonal();
    let span = |rng: &mut SmallRng| {
        bounds.min
            + Vec3::new(
                rng.gen::<f32>() * diag.x,
                rng.gen::<f32>() * diag.y,
                rng.gen::<f32>() * diag.z,
            )
    };
    let mut batch = RayBatch::with_capacity(n);
    match class {
        RequestClass::Primary => {
            let camera = &case.scene.camera;
            for _ in 0..n {
                let x = rng.gen_range(0..camera.width());
                let y = rng.gen_range(0..camera.height());
                batch.push(camera.primary_ray(x, y));
            }
        }
        RequestClass::AmbientOcclusion => {
            // Hemisphere-style probes: short segments from points inside
            // the scene, matching the §5.2 AO workload's ray shape.
            let radius = 0.1 * bounds.diagonal_length();
            for _ in 0..n {
                let origin = span(rng);
                let direction = rip_math::sampling::uniform_sphere(rng.gen(), rng.gen());
                batch.push(Ray::segment(origin, direction, radius));
            }
        }
        RequestClass::Shadow => {
            // Point light floating above the scene center.
            let light = bounds.center() + Vec3::new(0.0, diag.y, 0.0);
            for _ in 0..n {
                let origin = span(rng);
                let to_light = light - origin;
                let distance = to_light.length().max(1e-4);
                batch.push(Ray::segment(origin, to_light / distance, distance));
            }
        }
    }
    batch
}

/// Runs the open-loop generators against `service` and drains it to
/// completion, returning the aggregated report.
///
/// The calling thread acts as the dispatcher; one thread per tenant
/// submits on its absolute schedule. Returns after the schedule has
/// elapsed *and* every queued request has been traced.
pub fn run(service: &RayService, config: &LoadGenConfig) -> LoadReport {
    let tenants = config.tenants.min(service.tenants()).max(1);
    let interval = Duration::from_secs_f64(1.0 / config.rate.max(1e-3));
    let active = AtomicUsize::new(tenants);
    let offered = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for tenant in 0..tenants {
            let service = &service;
            let active = &active;
            let offered = &offered;
            let config = *config;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(config.seed.wrapping_add(tenant as u64));
                let mut sequence = 0u64;
                loop {
                    let due = start + interval.mul_f64(sequence as f64);
                    let now = Instant::now();
                    if now.duration_since(start) >= config.duration {
                        break;
                    }
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let class = RequestClass::ALL[(sequence as usize) % RequestClass::ALL.len()];
                    let rays =
                        synthesize_rays(service.case(), class, config.rays_per_request, &mut rng);
                    let deadline_us = config
                        .deadline
                        .map(|d| service.now_us().saturating_add(d.as_micros() as u64));
                    offered.fetch_add(1, Ordering::Relaxed);
                    // Every rejection is already counted by the service.
                    let _: Result<u64, Rejection> =
                        service.submit_with_deadline(tenant, class, rays, deadline_us);
                    sequence += 1;
                }
                active.fetch_sub(1, Ordering::AcqRel);
            });
        }

        // Dispatcher: drain until the generators stop and queues empty.
        loop {
            let round = service.run_round();
            if round.requests + round.expired + round.failed == 0 {
                if active.load(Ordering::Acquire) == 0 && service.pending() == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        }
    });

    let wall = start.elapsed();
    let stats = service.stats();
    let classes = RequestClass::ALL
        .iter()
        .map(|&class| ClassReport::from_stats(class, &stats.classes[class.index()]))
        .collect();
    let offered = offered.load(Ordering::Relaxed);
    let on_time = stats
        .completed_requests
        .saturating_sub(stats.deadline_miss_requests);
    LoadReport {
        wall,
        completed_requests: stats.completed_requests,
        completed_rays: stats.completed_rays,
        shed_requests: stats.shed_requests,
        rate_limited: stats.rate_limited,
        rejected_unmeetable: stats.rejected_unmeetable,
        expired_requests: stats.expired_requests,
        failed_requests: stats.failed_requests,
        deadline_miss_requests: stats.deadline_miss_requests,
        offered_requests: offered,
        availability: if offered == 0 {
            1.0
        } else {
            on_time as f64 / offered as f64
        },
        retried_chunks: stats.retried_chunks,
        mode_transitions: stats.mode_transitions,
        mode_rounds: stats.mode_rounds,
        final_mode: service.mode(),
        faults_by_kind: stats.faults_by_kind,
        rays_per_sec: stats.completed_rays as f64 / wall.as_secs_f64().max(1e-9),
        rounds: stats.rounds,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SceneRegistry;
    use crate::service::ServiceConfig;
    use rip_exec::{CaseCache, CaseKey};
    use rip_scene::{SceneId, SceneScale};
    use std::sync::Arc;

    #[test]
    fn synthesized_rays_match_request_size_and_class() {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let lease = registry.get(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
        let mut rng = SmallRng::seed_from_u64(7);
        for class in RequestClass::ALL {
            let batch = synthesize_rays(&lease.case, class, 33, &mut rng);
            assert_eq!(batch.len(), 33, "{}", class.label());
        }
        // Shadow rays are bounded segments pointing at the light.
        let batch = synthesize_rays(&lease.case, RequestClass::Shadow, 4, &mut rng);
        for ray in batch.iter() {
            assert!(ray.t_max.is_finite());
        }
    }

    #[test]
    fn short_open_loop_run_completes_and_reports() {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let lease = registry.get(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
        let service = RayService::new(
            lease,
            2,
            ServiceConfig {
                chunk_rays: 64,
                ..ServiceConfig::default()
            },
        );
        let report = run(
            &service,
            &LoadGenConfig {
                tenants: 2,
                rate: 40.0,
                rays_per_request: 32,
                duration: Duration::from_millis(250),
                deadline: None,
                seed: 11,
            },
        );
        assert!(report.completed_requests > 0, "no requests completed");
        assert!(report.rays_per_sec > 0.0);
        assert_eq!(service.pending(), 0, "drain must finish empty");
        assert_eq!(
            report.completed_requests
                + report.shed_requests
                + report.rate_limited
                + report.rejected_unmeetable
                + report.expired_requests
                + report.failed_requests,
            report.offered_requests,
            "every offered request reaches exactly one typed outcome"
        );
        assert_eq!(report.availability, 1.0, "no deadlines, no faults");
        assert_eq!(report.final_mode, ServiceMode::Full);
        let with_traffic: Vec<_> = report.classes.iter().filter(|c| c.requests > 0).collect();
        assert!(!with_traffic.is_empty());
        for class in with_traffic {
            assert!(class.p50_us <= class.p95_us && class.p95_us <= class.p99_us);
            assert!(class.p99_us <= class.max_us);
        }
    }

    #[test]
    fn deadlined_run_reports_availability() {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let lease = registry.get(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
        let service = RayService::new(
            lease,
            1,
            ServiceConfig {
                chunk_rays: 64,
                ..ServiceConfig::default()
            },
        );
        let report = run(
            &service,
            &LoadGenConfig {
                tenants: 1,
                rate: 30.0,
                rays_per_request: 16,
                duration: Duration::from_millis(200),
                // Generous deadline: a healthy tiny-scene service meets it.
                deadline: Some(Duration::from_secs(5)),
                seed: 3,
            },
        );
        assert!(report.offered_requests > 0);
        assert!(
            report.availability > 0.9,
            "availability {} with a 5 s deadline",
            report.availability
        );
        assert_eq!(report.failed_requests, 0);
    }
}
