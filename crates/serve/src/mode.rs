//! The graceful-degradation ladder: `Full → NoPredict → Survival`.
//!
//! The paper's predictor is a *transparent* accelerator — §4's
//! contract (machine-checked by `rip-testkit`) is that predicted and
//! unpredicted traversal return bit-identical hits. That is exactly the
//! property an overloaded service should spend: dropping prediction
//! sheds the shared-table traffic and the predictor bookkeeping without
//! changing a single result. The ladder:
//!
//! * [`ServiceMode::Full`] — shared predictor on, configured chunk size
//!   and fairness quota.
//! * [`ServiceMode::NoPredict`] — the shared table is bypassed; chunks
//!   trace through the raw kernel. Results are bit-identical (the
//!   transparency contract), only the acceleration is gone.
//! * [`ServiceMode::Survival`] — additionally shrinks `chunk_rays` and
//!   the fairness quota, trading throughput for small, predictable
//!   dispatch rounds (and letting bounded queues shed the excess).
//!
//! Transitions are driven by a sliding window of per-round health
//! (deadline misses + expiries + faulted requests over requests seen).
//! Escalation and recovery both move one rung at a time with a cooldown
//! between moves, so a single bad round cannot flap the service.

use std::collections::VecDeque;

/// The service's operating mode (see module docs for the ladder).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ServiceMode {
    /// Shared prediction on, full batch sizes — the happy path.
    #[default]
    Full,
    /// Prediction disabled; results bit-identical, table traffic gone.
    NoPredict,
    /// Prediction disabled, shrunken chunks and fairness quota.
    Survival,
}

impl ServiceMode {
    /// Every mode, in escalation order.
    pub const ALL: [ServiceMode; 3] = [
        ServiceMode::Full,
        ServiceMode::NoPredict,
        ServiceMode::Survival,
    ];

    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceMode::Full => "full",
            ServiceMode::NoPredict => "no_predict",
            ServiceMode::Survival => "survival",
        }
    }

    /// Stable index into per-mode arrays (matches [`ServiceMode::ALL`]).
    pub fn index(&self) -> usize {
        match self {
            ServiceMode::Full => 0,
            ServiceMode::NoPredict => 1,
            ServiceMode::Survival => 2,
        }
    }

    /// Whether the shared predictor table is consulted in this mode.
    pub fn predicts(&self) -> bool {
        matches!(self, ServiceMode::Full)
    }

    /// One rung worse (saturating at [`ServiceMode::Survival`]).
    pub fn degraded(&self) -> ServiceMode {
        match self {
            ServiceMode::Full => ServiceMode::NoPredict,
            ServiceMode::NoPredict | ServiceMode::Survival => ServiceMode::Survival,
        }
    }

    /// One rung better (saturating at [`ServiceMode::Full`]).
    pub fn recovered(&self) -> ServiceMode {
        match self {
            ServiceMode::Survival => ServiceMode::NoPredict,
            ServiceMode::NoPredict | ServiceMode::Full => ServiceMode::Full,
        }
    }
}

impl std::fmt::Display for ServiceMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Ladder tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct DegradeConfig {
    /// Rounds of health kept in the sliding window.
    pub window_rounds: usize,
    /// Bad-request ratio at or above which the service degrades a rung.
    pub degrade_ratio: f64,
    /// Bad-request ratio at or below which the service recovers a rung.
    pub recover_ratio: f64,
    /// Minimum rounds between two transitions (anti-flap).
    pub cooldown_rounds: u64,
    /// `chunk_rays` override while in [`ServiceMode::Survival`].
    pub survival_chunk_rays: usize,
    /// Fairness quota override while in [`ServiceMode::Survival`].
    pub survival_quota: usize,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            window_rounds: 16,
            degrade_ratio: 0.05,
            recover_ratio: 0.01,
            cooldown_rounds: 8,
            survival_chunk_rays: 128,
            survival_quota: 1,
        }
    }
}

/// One round's health sample.
#[derive(Clone, Copy, Debug, Default)]
struct RoundHealth {
    /// Requests that reached an outcome this round (completed, expired,
    /// or failed).
    requests: u64,
    /// The bad subset: expired, failed, or completed past deadline.
    bad: u64,
}

/// A recorded mode change.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModeTransition {
    /// The mode the service left.
    pub from: ServiceMode,
    /// The mode the service entered.
    pub to: ServiceMode,
    /// The windowed bad-request ratio that triggered the move.
    pub bad_ratio: f64,
}

impl PartialEq<(ServiceMode, ServiceMode)> for ModeTransition {
    fn eq(&self, other: &(ServiceMode, ServiceMode)) -> bool {
        (self.from, self.to) == *other
    }
}

/// Sliding-window mode controller (one per service, behind its stats
/// mutex).
#[derive(Debug)]
pub struct ModeController {
    config: DegradeConfig,
    mode: ServiceMode,
    window: VecDeque<RoundHealth>,
    rounds_since_transition: u64,
    transitions: u64,
}

impl ModeController {
    /// A controller starting in [`ServiceMode::Full`].
    pub fn new(config: DegradeConfig) -> Self {
        ModeController {
            config,
            mode: ServiceMode::Full,
            window: VecDeque::with_capacity(config.window_rounds.max(1)),
            rounds_since_transition: 0,
            transitions: 0,
        }
    }

    /// The current mode.
    pub fn mode(&self) -> ServiceMode {
        self.mode
    }

    /// Transitions taken so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Forces the controller to `mode` (harness hook: chaos and A/B
    /// benchmarks pin a rung to compare against). Clears the health
    /// window so the forced mode is judged only on fresh rounds; the
    /// move is recorded as a transition when it changes the mode.
    pub fn force(&mut self, mode: ServiceMode) -> Option<ModeTransition> {
        if mode == self.mode {
            return None;
        }
        let from = std::mem::replace(&mut self.mode, mode);
        self.window.clear();
        self.rounds_since_transition = 0;
        self.transitions += 1;
        Some(ModeTransition {
            from,
            to: mode,
            bad_ratio: 0.0,
        })
    }

    /// The windowed bad-request ratio (0 when the window saw no
    /// requests — idle is healthy).
    pub fn bad_ratio(&self) -> f64 {
        let (requests, bad) = self
            .window
            .iter()
            .fold((0u64, 0u64), |(r, b), h| (r + h.requests, b + h.bad));
        if requests == 0 {
            0.0
        } else {
            bad as f64 / requests as f64
        }
    }

    /// Feeds one round's health (`requests` outcomes, `bad` of them
    /// degraded) and returns the transition it caused, if any.
    ///
    /// Escalation requires a *full* window — a single bad round right
    /// after startup must not panic the service into `Survival` — while
    /// recovery only requires the cooldown, so a drained service climbs
    /// back as soon as the bad window ages out.
    pub fn observe_round(&mut self, requests: u64, bad: u64) -> Option<ModeTransition> {
        let capacity = self.config.window_rounds.max(1);
        if self.window.len() == capacity {
            self.window.pop_front();
        }
        self.window.push_back(RoundHealth { requests, bad });
        self.rounds_since_transition += 1;
        if self.rounds_since_transition < self.config.cooldown_rounds.max(1) {
            return None;
        }
        let ratio = self.bad_ratio();
        let next = if ratio >= self.config.degrade_ratio && self.window.len() == capacity {
            self.mode.degraded()
        } else if ratio <= self.config.recover_ratio {
            self.mode.recovered()
        } else {
            self.mode
        };
        if next == self.mode {
            return None;
        }
        let from = std::mem::replace(&mut self.mode, next);
        // Fresh start: the rounds that justified this move must not be
        // double-counted toward the next one.
        self.window.clear();
        self.rounds_since_transition = 0;
        self.transitions += 1;
        Some(ModeTransition {
            from,
            to: next,
            bad_ratio: ratio,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DegradeConfig {
        DegradeConfig {
            window_rounds: 4,
            degrade_ratio: 0.5,
            recover_ratio: 0.1,
            cooldown_rounds: 2,
            ..DegradeConfig::default()
        }
    }

    #[test]
    fn mode_metadata_is_stable() {
        for (i, mode) in ServiceMode::ALL.iter().enumerate() {
            assert_eq!(mode.index(), i);
        }
        assert!(ServiceMode::Full.predicts());
        assert!(!ServiceMode::NoPredict.predicts());
        assert_eq!(ServiceMode::Survival.degraded(), ServiceMode::Survival);
        assert_eq!(ServiceMode::Full.recovered(), ServiceMode::Full);
        assert_eq!(ServiceMode::NoPredict.label(), "no_predict");
    }

    #[test]
    fn ladder_descends_one_rung_at_a_time_with_cooldown() {
        let mut c = ModeController::new(config());
        let mut transitions = Vec::new();
        for _ in 0..16 {
            if let Some(t) = c.observe_round(10, 10) {
                transitions.push((t.from, t.to));
            }
        }
        assert_eq!(
            transitions,
            vec![
                (ServiceMode::Full, ServiceMode::NoPredict),
                (ServiceMode::NoPredict, ServiceMode::Survival),
            ]
        );
        assert_eq!(c.mode(), ServiceMode::Survival);
        assert_eq!(c.transitions(), 2);
    }

    #[test]
    fn healthy_rounds_climb_back_to_full() {
        let mut c = ModeController::new(config());
        for _ in 0..16 {
            c.observe_round(10, 10);
        }
        assert_eq!(c.mode(), ServiceMode::Survival);
        let mut recovered = Vec::new();
        for _ in 0..16 {
            if let Some(t) = c.observe_round(10, 0) {
                recovered.push((t.from, t.to));
            }
        }
        assert_eq!(
            recovered,
            vec![
                (ServiceMode::Survival, ServiceMode::NoPredict),
                (ServiceMode::NoPredict, ServiceMode::Full),
            ]
        );
        assert_eq!(c.transitions(), 4);
    }

    #[test]
    fn idle_rounds_count_as_healthy() {
        let mut c = ModeController::new(config());
        for _ in 0..8 {
            c.observe_round(10, 10);
        }
        assert_ne!(c.mode(), ServiceMode::Full);
        for _ in 0..8 {
            c.observe_round(0, 0);
        }
        assert_eq!(c.mode(), ServiceMode::Full, "an idle service recovers");
    }

    #[test]
    fn escalation_needs_a_full_window() {
        let mut c = ModeController::new(DegradeConfig {
            window_rounds: 8,
            cooldown_rounds: 1,
            ..config()
        });
        // Three catastrophic rounds, but the window is not full yet.
        for _ in 0..3 {
            assert_eq!(c.observe_round(10, 10), None);
        }
        assert_eq!(c.mode(), ServiceMode::Full);
    }

    #[test]
    fn force_pins_and_counts() {
        let mut c = ModeController::new(config());
        let t = c.force(ServiceMode::Survival).unwrap();
        assert_eq!(t, (ServiceMode::Full, ServiceMode::Survival));
        assert_eq!(c.force(ServiceMode::Survival), None);
        assert_eq!(c.mode(), ServiceMode::Survival);
        assert_eq!(c.transitions(), 1);
    }
}
