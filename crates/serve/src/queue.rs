//! Bounded per-tenant request queues, deadlines, and typed rejection.
//!
//! The front-end is *open-loop*: tenants submit on their own schedule,
//! regardless of how fast the service drains. An unbounded queue would
//! hide overload as unbounded latency; a bounded queue surfaces it
//! immediately as [`Backpressure`], which the load generator counts as
//! a shed request — the honest failure mode for a saturated service.
//!
//! Every [`Request`] may carry a *deadline*: an absolute reading of the
//! service's [`rip_obs::Clock`] after which its result is dead on
//! arrival. Deadlines are enforced three times, each with a distinct
//! typed outcome ([`Rejection`] at admission, a
//! [`FaultKind::DeadlineExceeded`](rip_exec::FaultKind) attribution
//! later):
//!
//! 1. at **admission** — a deadline the queue-age estimate already rules
//!    out is rejected immediately ([`Rejection::DeadlineUnmeetable`]);
//! 2. at **dispatch** — a request that expired while queued is dropped
//!    instead of tracing dead work;
//! 3. at **completion** — a request that finished late still returns its
//!    result but counts as a deadline miss in the SLO accounting.
//!
//! All timestamps are `u64` microsecond readings of the owning
//! service's clock (never raw `std::time::Instant`), so
//! `RIP_TRACE_CLOCK=logical` runs make every latency and deadline
//! decision deterministically.

use rip_bvh::{RayBatch, TraversalKind};
use std::collections::VecDeque;
use std::sync::Mutex;

/// The traffic classes the service distinguishes (each gets its own
/// latency histogram and coalesced batch per dispatch round).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Camera rays; closest-hit traversal.
    Primary,
    /// Ambient-occlusion probe rays; any-hit segments (§5.2 workload).
    AmbientOcclusion,
    /// Point-light shadow rays; any-hit segments.
    Shadow,
}

impl RequestClass {
    /// Every class, in stable report order.
    pub const ALL: [RequestClass; 3] = [
        RequestClass::Primary,
        RequestClass::AmbientOcclusion,
        RequestClass::Shadow,
    ];

    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RequestClass::Primary => "primary",
            RequestClass::AmbientOcclusion => "ao",
            RequestClass::Shadow => "shadow",
        }
    }

    /// The traversal kind this class requires.
    pub fn kind(&self) -> TraversalKind {
        match self {
            RequestClass::Primary => TraversalKind::ClosestHit,
            RequestClass::AmbientOcclusion | RequestClass::Shadow => TraversalKind::AnyHit,
        }
    }

    /// Stable index into per-class arrays (matches [`RequestClass::ALL`]).
    pub fn index(&self) -> usize {
        match self {
            RequestClass::Primary => 0,
            RequestClass::AmbientOcclusion => 1,
            RequestClass::Shadow => 2,
        }
    }
}

/// One submitted request: a batch of rays from one tenant, one class.
#[derive(Clone, Debug)]
pub struct Request {
    /// Monotone request id assigned at submission.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: usize,
    /// Traffic class.
    pub class: RequestClass,
    /// The rays to trace.
    pub rays: RayBatch,
    /// Service-clock reading at admission (latency is measured from
    /// here to the end of the dispatch round that traced the request).
    pub submitted_us: u64,
    /// Absolute service-clock deadline, if any. A queued request whose
    /// deadline passes is expired at dispatch; a traced one that beats
    /// the dispatch check but completes late counts as a deadline miss.
    pub deadline_us: Option<u64>,
}

impl Request {
    /// Whether the deadline (if any) has passed at clock reading `now_us`.
    pub fn expired(&self, now_us: u64) -> bool {
        self.deadline_us.is_some_and(|d| now_us > d)
    }

    /// Clock budget left before the deadline (`None` = unbounded;
    /// `Some(0)` = already expired).
    pub fn remaining_us(&self, now_us: u64) -> Option<u64> {
        self.deadline_us.map(|d| d.saturating_sub(now_us))
    }
}

/// The queue for `tenant` is full: the request was shed, not enqueued.
///
/// Carries the shed-time context — queue depth and the request's class —
/// so shed telemetry can distinguish a chatty tenant (depth at
/// capacity, one class dominating) from a slow dispatcher (every class
/// shedding at once).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// The tenant whose queue rejected the request.
    pub tenant: usize,
    /// The queue's capacity at rejection time.
    pub capacity: usize,
    /// Requests sitting in the queue when the shed happened.
    pub depth: usize,
    /// The class of the request that was shed.
    pub class: RequestClass,
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {} queue full ({} of capacity {}) shedding {} request",
            self.tenant,
            self.depth,
            self.capacity,
            self.class.label()
        )
    }
}

impl std::error::Error for Backpressure {}

/// Why a submission was refused. Each variant is a *different* signal
/// to the client: back off ([`Rejection::Backpressure`]), slow down
/// ([`Rejection::RateLimited`]), or loosen the deadline
/// ([`Rejection::DeadlineUnmeetable`]) — conflating them (the seed
/// behaviour: shed-on-full was the only failure mode) hides which knob
/// is saturated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Rejection {
    /// The tenant's bounded queue is full.
    Backpressure(Backpressure),
    /// The tenant's admission token bucket is empty.
    RateLimited {
        /// The rate-limited tenant.
        tenant: usize,
        /// Class of the refused request.
        class: RequestClass,
        /// Clock µs until a token will be available again.
        retry_after_us: u64,
    },
    /// The requested deadline cannot be met: it already passed, or the
    /// queue-age estimate puts completion past it. Rejecting at
    /// admission beats tracing work that is dead on arrival.
    DeadlineUnmeetable {
        /// The submitting tenant.
        tenant: usize,
        /// Class of the refused request.
        class: RequestClass,
        /// The deadline that was asked for (absolute clock µs).
        deadline_us: u64,
        /// When the service estimates the request would have completed.
        estimated_done_us: u64,
    },
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Backpressure(bp) => bp.fmt(f),
            Rejection::RateLimited {
                tenant,
                class,
                retry_after_us,
            } => write!(
                f,
                "tenant {tenant} rate-limited ({} request, retry in {retry_after_us} us)",
                class.label()
            ),
            Rejection::DeadlineUnmeetable {
                tenant,
                class,
                deadline_us,
                estimated_done_us,
            } => write!(
                f,
                "tenant {tenant} {} deadline {deadline_us} us unmeetable \
                 (estimated completion {estimated_done_us} us)",
                class.label()
            ),
        }
    }
}

impl std::error::Error for Rejection {}

impl From<Backpressure> for Rejection {
    fn from(bp: Backpressure) -> Self {
        Rejection::Backpressure(bp)
    }
}

/// A bounded FIFO of pending requests for one tenant.
#[derive(Debug)]
pub struct TenantQueue {
    tenant: usize,
    capacity: usize,
    pending: Mutex<VecDeque<Request>>,
}

impl TenantQueue {
    /// An empty queue for `tenant` holding at most `capacity` requests.
    pub fn new(tenant: usize, capacity: usize) -> Self {
        TenantQueue {
            tenant,
            capacity: capacity.max(1),
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// The owning tenant.
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// Maximum requests held at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a request, or sheds it with [`Backpressure`] when full.
    pub fn push(&self, request: Request) -> Result<(), Backpressure> {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        if pending.len() >= self.capacity {
            return Err(Backpressure {
                tenant: self.tenant,
                capacity: self.capacity,
                depth: pending.len(),
                class: request.class,
            });
        }
        pending.push_back(request);
        Ok(())
    }

    /// Dequeues the oldest pending request.
    pub fn pop(&self) -> Option<Request> {
        self.pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front()
    }

    /// Whether the queue is at capacity (the next push would shed).
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.pending.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(tenant: usize, id: u64) -> Request {
        Request {
            id,
            tenant,
            class: RequestClass::Primary,
            rays: RayBatch::default(),
            submitted_us: 0,
            deadline_us: None,
        }
    }

    #[test]
    fn bounded_queue_sheds_when_full() {
        let q = TenantQueue::new(3, 2);
        q.push(request(3, 0)).unwrap();
        q.push(request(3, 1)).unwrap();
        let err = q.push(request(3, 2)).unwrap_err();
        assert_eq!(
            err,
            Backpressure {
                tenant: 3,
                capacity: 2,
                depth: 2,
                class: RequestClass::Primary,
            }
        );
        // Draining frees capacity again, FIFO order.
        assert_eq!(q.pop().unwrap().id, 0);
        q.push(request(3, 2)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn class_metadata_is_stable() {
        for (i, class) in RequestClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
        assert_eq!(RequestClass::Primary.kind(), TraversalKind::ClosestHit);
        assert_eq!(RequestClass::Shadow.kind(), TraversalKind::AnyHit);
        assert_eq!(RequestClass::AmbientOcclusion.label(), "ao");
    }

    #[test]
    fn deadlines_expire_and_budget() {
        let mut r = request(0, 0);
        assert!(!r.expired(u64::MAX), "no deadline never expires");
        assert_eq!(r.remaining_us(100), None);
        r.deadline_us = Some(50);
        assert!(!r.expired(50), "deadline instant itself still counts");
        assert!(r.expired(51));
        assert_eq!(r.remaining_us(30), Some(20));
        assert_eq!(r.remaining_us(80), Some(0));
    }

    #[test]
    fn rejection_messages_name_the_cause() {
        let bp: Rejection = Backpressure {
            tenant: 1,
            capacity: 4,
            depth: 4,
            class: RequestClass::Shadow,
        }
        .into();
        assert!(bp.to_string().contains("queue full"));
        assert!(bp.to_string().contains("shadow"));
        let rl = Rejection::RateLimited {
            tenant: 2,
            class: RequestClass::Primary,
            retry_after_us: 900,
        };
        assert!(rl.to_string().contains("rate-limited"));
        let dl = Rejection::DeadlineUnmeetable {
            tenant: 0,
            class: RequestClass::AmbientOcclusion,
            deadline_us: 10,
            estimated_done_us: 90,
        };
        assert!(dl.to_string().contains("unmeetable"));
    }
}
