//! Bounded per-tenant request queues with backpressure.
//!
//! The front-end is *open-loop*: tenants submit on their own schedule,
//! regardless of how fast the service drains. An unbounded queue would
//! hide overload as unbounded latency; a bounded queue surfaces it
//! immediately as [`Backpressure`], which the load generator counts as
//! a shed request — the honest failure mode for a saturated service.

use rip_bvh::{RayBatch, TraversalKind};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// The traffic classes the service distinguishes (each gets its own
/// latency histogram and coalesced batch per dispatch round).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Camera rays; closest-hit traversal.
    Primary,
    /// Ambient-occlusion probe rays; any-hit segments (§5.2 workload).
    AmbientOcclusion,
    /// Point-light shadow rays; any-hit segments.
    Shadow,
}

impl RequestClass {
    /// Every class, in stable report order.
    pub const ALL: [RequestClass; 3] = [
        RequestClass::Primary,
        RequestClass::AmbientOcclusion,
        RequestClass::Shadow,
    ];

    /// Stable lowercase label for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            RequestClass::Primary => "primary",
            RequestClass::AmbientOcclusion => "ao",
            RequestClass::Shadow => "shadow",
        }
    }

    /// The traversal kind this class requires.
    pub fn kind(&self) -> TraversalKind {
        match self {
            RequestClass::Primary => TraversalKind::ClosestHit,
            RequestClass::AmbientOcclusion | RequestClass::Shadow => TraversalKind::AnyHit,
        }
    }

    /// Stable index into per-class arrays (matches [`RequestClass::ALL`]).
    pub fn index(&self) -> usize {
        match self {
            RequestClass::Primary => 0,
            RequestClass::AmbientOcclusion => 1,
            RequestClass::Shadow => 2,
        }
    }
}

/// One submitted request: a batch of rays from one tenant, one class.
#[derive(Clone, Debug)]
pub struct Request {
    /// Monotone request id assigned at submission.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: usize,
    /// Traffic class.
    pub class: RequestClass,
    /// The rays to trace.
    pub rays: RayBatch,
    /// Submission instant (latency is measured from here to the end of
    /// the dispatch round that traced the request).
    pub submitted: Instant,
}

/// The queue for `tenant` is full: the request was shed, not enqueued.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backpressure {
    /// The tenant whose queue rejected the request.
    pub tenant: usize,
    /// The queue's capacity at rejection time.
    pub capacity: usize,
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant {} queue full (capacity {})",
            self.tenant, self.capacity
        )
    }
}

impl std::error::Error for Backpressure {}

/// A bounded FIFO of pending requests for one tenant.
#[derive(Debug)]
pub struct TenantQueue {
    tenant: usize,
    capacity: usize,
    pending: Mutex<VecDeque<Request>>,
}

impl TenantQueue {
    /// An empty queue for `tenant` holding at most `capacity` requests.
    pub fn new(tenant: usize, capacity: usize) -> Self {
        TenantQueue {
            tenant,
            capacity: capacity.max(1),
            pending: Mutex::new(VecDeque::new()),
        }
    }

    /// The owning tenant.
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// Maximum requests held at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a request, or sheds it with [`Backpressure`] when full.
    pub fn push(&self, request: Request) -> Result<(), Backpressure> {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        if pending.len() >= self.capacity {
            return Err(Backpressure {
                tenant: self.tenant,
                capacity: self.capacity,
            });
        }
        pending.push_back(request);
        Ok(())
    }

    /// Dequeues the oldest pending request.
    pub fn pop(&self) -> Option<Request> {
        self.pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .pop_front()
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.pending.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(tenant: usize, id: u64) -> Request {
        Request {
            id,
            tenant,
            class: RequestClass::Primary,
            rays: RayBatch::default(),
            submitted: Instant::now(),
        }
    }

    #[test]
    fn bounded_queue_sheds_when_full() {
        let q = TenantQueue::new(3, 2);
        q.push(request(3, 0)).unwrap();
        q.push(request(3, 1)).unwrap();
        let err = q.push(request(3, 2)).unwrap_err();
        assert_eq!(
            err,
            Backpressure {
                tenant: 3,
                capacity: 2
            }
        );
        // Draining frees capacity again, FIFO order.
        assert_eq!(q.pop().unwrap().id, 0);
        q.push(request(3, 2)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn class_metadata_is_stable() {
        for (i, class) in RequestClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
        assert_eq!(RequestClass::Primary.kind(), TraversalKind::ClosestHit);
        assert_eq!(RequestClass::Shadow.kind(), TraversalKind::AnyHit);
        assert_eq!(RequestClass::AmbientOcclusion.label(), "ao");
    }
}
