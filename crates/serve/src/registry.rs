//! Epoch-based immutable scene/BVH registry.
//!
//! A long-lived service cannot rebuild scenes per request, and it cannot
//! mutate a scene while requests are tracing against it. The registry
//! resolves both with the standard immutable-epoch shape used by
//! production ray-tracing services over acceleration structures:
//!
//! * every lookup hands out an [`Arc`]'d, fully built
//!   [`Case`](rip_exec::Case) (scene + BVH) from the shared
//!   [`CaseCache`] — never a mutable reference;
//! * a *reload* builds the replacement off to the side (through the
//!   cache, so the artifact store is still consulted) and then bumps an
//!   atomic epoch counter. New leases see the new case; requests
//!   holding the old `Arc` keep tracing against consistent geometry
//!   until they drop it.

use rip_exec::{Case, CaseCache, CaseKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A leased scene: the immutable case plus the registry epoch it was
/// current at. Requests carry the lease for their whole lifetime, so a
/// concurrent reload can never swap geometry under a half-traced batch.
#[derive(Clone, Debug)]
pub struct SceneLease {
    /// The immutable scene + BVH.
    pub case: Arc<Case>,
    /// Registry epoch at lease time (bumped by every reload).
    pub epoch: u64,
}

/// Epoch-based registry of immutable scenes, backed by a shared
/// [`CaseCache`].
///
/// # Examples
///
/// ```
/// use rip_exec::{CaseCache, CaseKey};
/// use rip_scene::{SceneId, SceneScale};
/// use rip_serve::SceneRegistry;
/// use std::sync::Arc;
///
/// let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
/// let key = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16);
/// let a = registry.get(key);
/// let b = registry.get(key);
/// assert!(Arc::ptr_eq(&a.case, &b.case), "same epoch shares one build");
/// assert_eq!(a.epoch, b.epoch);
///
/// let c = registry.reload(key);
/// assert!(c.epoch > b.epoch, "reload bumps the epoch");
/// // The old lease keeps its geometry: nothing mutated underneath it.
/// assert_eq!(a.case.bvh.triangle_count(), c.case.bvh.triangle_count());
/// ```
#[derive(Debug)]
pub struct SceneRegistry {
    cache: Arc<CaseCache>,
    /// Monotone reload counter; leases snapshot it.
    epoch: AtomicU64,
    /// The epoch each key was last (re)loaded at.
    key_epochs: Mutex<HashMap<CaseKey, u64>>,
}

impl SceneRegistry {
    /// A registry over `cache`. The cache may be shared with the rest of
    /// the process (e.g. the experiment runner) — the registry only adds
    /// epoch bookkeeping on top.
    pub fn new(cache: Arc<CaseCache>) -> Self {
        SceneRegistry {
            cache,
            epoch: AtomicU64::new(0),
            key_epochs: Mutex::new(HashMap::new()),
        }
    }

    /// The current global epoch (number of reloads so far).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The backing cache.
    pub fn cache(&self) -> &Arc<CaseCache> {
        &self.cache
    }

    /// Leases the current case for `key`, building it at most once per
    /// process (and consulting the artifact store before building).
    pub fn get(&self, key: CaseKey) -> SceneLease {
        let case = self.cache.get_or_build(key);
        let epoch = *self
            .key_epochs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(key)
            .or_insert(0);
        SceneLease { case, epoch }
    }

    /// Rebuilds `key` and publishes it under a new epoch. In-flight
    /// holders of the previous lease are unaffected; new [`get`]s
    /// observe the rebuilt case.
    ///
    /// [`get`]: SceneRegistry::get
    pub fn reload(&self, key: CaseKey) -> SceneLease {
        self.cache.invalidate(key);
        let case = self.cache.get_or_build(key);
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.key_epochs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, epoch);
        SceneLease { case, epoch }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_scene::{SceneId, SceneScale};

    fn key() -> CaseKey {
        CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16)
    }

    #[test]
    fn reload_swaps_the_arc_and_bumps_epoch() {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let old = registry.get(key());
        assert_eq!(old.epoch, 0);
        let fresh = registry.reload(key());
        assert_eq!(fresh.epoch, 1);
        assert_eq!(registry.epoch(), 1);
        assert!(
            !Arc::ptr_eq(&old.case, &fresh.case),
            "reload must build a distinct case"
        );
        // Subsequent gets serve the reloaded case at the new epoch.
        let next = registry.get(key());
        assert!(Arc::ptr_eq(&next.case, &fresh.case));
        assert_eq!(next.epoch, 1);
    }

    #[test]
    fn epochs_are_per_key() {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let a = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16);
        let b = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 18);
        registry.reload(a);
        registry.reload(a);
        assert_eq!(registry.get(a).epoch, 2);
        assert_eq!(registry.get(b).epoch, 0, "b was never reloaded");
    }
}
