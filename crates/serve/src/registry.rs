//! Epoch-based immutable scene/BVH registry with a reload circuit
//! breaker.
//!
//! A long-lived service cannot rebuild scenes per request, and it cannot
//! mutate a scene while requests are tracing against it. The registry
//! resolves both with the standard immutable-epoch shape used by
//! production ray-tracing services over acceleration structures:
//!
//! * every lookup hands out an [`Arc`]'d, fully built
//!   [`Case`](rip_exec::Case) (scene + BVH) from the shared
//!   [`CaseCache`] — never a mutable reference;
//! * a *reload* builds the replacement off to the side (through the
//!   cache, so the artifact store is still consulted) and then bumps an
//!   atomic epoch counter. New leases see the new case; requests
//!   holding the old `Arc` keep tracing against consistent geometry
//!   until they drop it.
//!
//! **Reload failure is survivable.** [`SceneRegistry::try_reload`] runs
//! the rebuild under [`Fault::catch`]: a panicking build restores the
//! previous case into the cache (the epoch does not advance) so readers
//! keep being served the last good geometry, and a circuit breaker
//! opens after [`BreakerConfig::failure_threshold`] consecutive
//! failures — further reloads are refused cheaply (no rebuild attempt)
//! until [`BreakerConfig::probe_after`] refusals allow one half-open
//! probe through. `RIP_FAULT_INJECT` directives labelled `serve_reload`
//! are honoured at the top of each attempt, which is how tests and CI
//! drive this path.
//!
//! **Leases wrap mapped artifacts.** When the backing cache has a disk
//! store, a reload that finds a valid RIPA v2 artifact swaps the lease's
//! `Arc` onto buffers decoded *in place* over the mapped file bytes
//! (`MappedArtifact` in `rip-exec`) — no mesh or node vectors are
//! re-copied. The artifact bytes are reference-counted through the
//! case, so an old lease held across a reload keeps its mapping alive
//! until the last request drops it; with the `mmap` feature forwarded
//! from `rip-exec` the kernel shares those pages across epochs.

use crate::chaos::RELOAD_INJECT_LABEL;
use rip_exec::{Case, CaseCache, CaseKey, Fault};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A leased scene: the immutable case plus the registry epoch it was
/// current at. Requests carry the lease for their whole lifetime, so a
/// concurrent reload can never swap geometry under a half-traced batch.
#[derive(Clone, Debug)]
pub struct SceneLease {
    /// The immutable scene + BVH.
    pub case: Arc<Case>,
    /// Registry epoch at lease time (bumped by every reload).
    pub epoch: u64,
}

/// Circuit-breaker knobs for [`SceneRegistry::try_reload`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive reload failures that open the breaker.
    pub failure_threshold: u32,
    /// Refused reloads while open before one half-open probe attempt is
    /// let through.
    pub probe_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            probe_after: 4,
        }
    }
}

/// Why [`SceneRegistry::try_reload`] did not publish a new epoch. In
/// both cases the previous epoch keeps being served.
#[derive(Clone, Debug, PartialEq)]
pub enum ReloadError {
    /// The breaker is open: the reload was refused without attempting a
    /// rebuild.
    BreakerOpen {
        /// Consecutive failures that opened it.
        failures: u32,
        /// Refusals remaining before a half-open probe is allowed.
        until_probe: u32,
    },
    /// The rebuild itself failed; the fault carries the panic/IO cause.
    BuildFailed(Fault),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::BreakerOpen {
                failures,
                until_probe,
            } => write!(
                f,
                "reload breaker open after {failures} consecutive failures \
                 ({until_probe} refusals until probe)"
            ),
            ReloadError::BuildFailed(fault) => write!(f, "scene rebuild failed: {fault}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// Breaker state (behind the registry's mutex).
#[derive(Debug, Default)]
struct BreakerState {
    /// Consecutive failed reload attempts.
    consecutive_failures: u32,
    /// Reloads refused since the breaker opened.
    refusals: u32,
}

/// Epoch-based registry of immutable scenes, backed by a shared
/// [`CaseCache`].
///
/// # Examples
///
/// ```
/// use rip_exec::{CaseCache, CaseKey};
/// use rip_scene::{SceneId, SceneScale};
/// use rip_serve::SceneRegistry;
/// use std::sync::Arc;
///
/// let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
/// let key = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16);
/// let a = registry.get(key);
/// let b = registry.get(key);
/// assert!(Arc::ptr_eq(&a.case, &b.case), "same epoch shares one build");
/// assert_eq!(a.epoch, b.epoch);
///
/// let c = registry.try_reload(key).unwrap();
/// assert!(c.epoch > b.epoch, "reload bumps the epoch");
/// // The old lease keeps its geometry: nothing mutated underneath it.
/// assert_eq!(a.case.bvh.triangle_count(), c.case.bvh.triangle_count());
/// ```
#[derive(Debug)]
pub struct SceneRegistry {
    cache: Arc<CaseCache>,
    /// Monotone reload counter; leases snapshot it.
    epoch: AtomicU64,
    /// The epoch each key was last (re)loaded at.
    key_epochs: Mutex<HashMap<CaseKey, u64>>,
    breaker_config: BreakerConfig,
    breaker: Mutex<BreakerState>,
    /// Lifetime reload outcomes: (ok, failed, refused).
    reload_counts: [AtomicU64; 3],
}

impl SceneRegistry {
    /// A registry over `cache`. The cache may be shared with the rest of
    /// the process (e.g. the experiment runner) — the registry only adds
    /// epoch bookkeeping on top.
    pub fn new(cache: Arc<CaseCache>) -> Self {
        SceneRegistry::with_breaker(cache, BreakerConfig::default())
    }

    /// A registry with explicit circuit-breaker knobs.
    pub fn with_breaker(cache: Arc<CaseCache>, breaker_config: BreakerConfig) -> Self {
        SceneRegistry {
            cache,
            epoch: AtomicU64::new(0),
            key_epochs: Mutex::new(HashMap::new()),
            breaker_config,
            breaker: Mutex::new(BreakerState::default()),
            reload_counts: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }

    /// The current global epoch (number of successful reloads so far).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The backing cache.
    pub fn cache(&self) -> &Arc<CaseCache> {
        &self.cache
    }

    /// Lifetime reload outcomes: `(ok, failed, refused)`.
    pub fn reload_counts(&self) -> (u64, u64, u64) {
        (
            self.reload_counts[0].load(Ordering::Relaxed),
            self.reload_counts[1].load(Ordering::Relaxed),
            self.reload_counts[2].load(Ordering::Relaxed),
        )
    }

    /// Whether the reload breaker is currently open.
    pub fn breaker_open(&self) -> bool {
        let state = self.breaker.lock().unwrap_or_else(|p| p.into_inner());
        state.consecutive_failures >= self.breaker_config.failure_threshold
    }

    /// Leases the current case for `key`, building it at most once per
    /// process (and consulting the artifact store before building).
    pub fn get(&self, key: CaseKey) -> SceneLease {
        let case = self.cache.get_or_build(key);
        let epoch = *self
            .key_epochs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(key)
            .or_insert(0);
        SceneLease { case, epoch }
    }

    /// Rebuilds `key` and publishes it under a new epoch. In-flight
    /// holders of the previous lease are unaffected; new [`get`]s
    /// observe the rebuilt case.
    ///
    /// # Panics
    ///
    /// Panics when the rebuild panics — the pre-breaker behaviour. Use
    /// [`SceneRegistry::try_reload`] in service loops; this stays for
    /// callers that prefer a crash over degraded geometry.
    ///
    /// [`get`]: SceneRegistry::get
    pub fn reload(&self, key: CaseKey) -> SceneLease {
        self.cache.invalidate(key);
        let case = self.cache.get_or_build(key);
        SceneLease {
            case,
            epoch: self.publish_epoch(key),
        }
    }

    /// Fault-isolated reload with a circuit breaker.
    ///
    /// On success the new case is published under a bumped epoch,
    /// exactly like [`SceneRegistry::reload`], and the breaker resets.
    /// On failure the *previous* case is restored into the cache (the
    /// epoch does not move — readers never observe the failed build) and
    /// the failure counts toward opening the breaker; while open,
    /// reloads are refused without attempting the build until a
    /// half-open probe is due. `RIP_FAULT_INJECT` directives labelled
    /// `serve_reload` run at the top of every attempt.
    pub fn try_reload(&self, key: CaseKey) -> Result<SceneLease, ReloadError> {
        let attempt = {
            let mut state = self.breaker.lock().unwrap_or_else(|p| p.into_inner());
            if state.consecutive_failures >= self.breaker_config.failure_threshold {
                let probe_after = self.breaker_config.probe_after.max(1);
                if state.refusals < probe_after {
                    state.refusals += 1;
                    let until_probe = probe_after - state.refusals;
                    let failures = state.consecutive_failures;
                    drop(state);
                    self.reload_counts[2].fetch_add(1, Ordering::Relaxed);
                    let obs = rip_obs::Obs::global();
                    obs.add("serve.reload.refused", 1);
                    return Err(ReloadError::BreakerOpen {
                        failures,
                        until_probe,
                    });
                }
                // Half-open: let this attempt probe the build.
                state.refusals = 0;
            }
            state.consecutive_failures + 1
        };

        let previous = self.cache.peek(key);
        let result = Fault::catch(|| {
            rip_exec::apply_injections(RELOAD_INJECT_LABEL, attempt)?;
            self.cache.invalidate(key);
            Ok(self.cache.get_or_build(key))
        });
        let obs = rip_obs::Obs::global();
        match result {
            Ok(case) => {
                let mut state = self.breaker.lock().unwrap_or_else(|p| p.into_inner());
                state.consecutive_failures = 0;
                state.refusals = 0;
                drop(state);
                self.reload_counts[0].fetch_add(1, Ordering::Relaxed);
                obs.add("serve.reload.ok", 1);
                Ok(SceneLease {
                    case,
                    epoch: self.publish_epoch(key),
                })
            }
            Err(fault) => {
                // Put the last good case back so readers keep being
                // served the old epoch instead of re-running the failing
                // build on their next `get`.
                if let Some(previous) = previous {
                    self.cache.restore(key, previous);
                }
                let mut state = self.breaker.lock().unwrap_or_else(|p| p.into_inner());
                state.consecutive_failures += 1;
                let failures = state.consecutive_failures;
                drop(state);
                self.reload_counts[1].fetch_add(1, Ordering::Relaxed);
                obs.add("serve.reload.failed", 1);
                obs.event("serve.registry", "reload_failed")
                    .arg("case", key.label())
                    .arg("fault", fault.kind.label())
                    .arg_u64("consecutive", u64::from(failures))
                    .emit();
                Err(ReloadError::BuildFailed(fault))
            }
        }
    }

    /// Bumps the global epoch and records it for `key`.
    fn publish_epoch(&self, key: CaseKey) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        self.key_epochs
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(key, epoch);
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_scene::{SceneId, SceneScale};

    fn key() -> CaseKey {
        CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16)
    }

    #[test]
    fn reload_swaps_the_arc_and_bumps_epoch() {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let old = registry.get(key());
        assert_eq!(old.epoch, 0);
        let fresh = registry.reload(key());
        assert_eq!(fresh.epoch, 1);
        assert_eq!(registry.epoch(), 1);
        assert!(
            !Arc::ptr_eq(&old.case, &fresh.case),
            "reload must build a distinct case"
        );
        // Subsequent gets serve the reloaded case at the new epoch.
        let next = registry.get(key());
        assert!(Arc::ptr_eq(&next.case, &fresh.case));
        assert_eq!(next.epoch, 1);
    }

    #[test]
    fn epochs_are_per_key() {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let a = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16);
        let b = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 18);
        registry.reload(a);
        registry.reload(a);
        assert_eq!(registry.get(a).epoch, 2);
        assert_eq!(registry.get(b).epoch, 0, "b was never reloaded");
    }

    #[test]
    fn try_reload_succeeds_like_reload() {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let old = registry.get(key());
        let fresh = registry.try_reload(key()).unwrap();
        assert_eq!(fresh.epoch, 1);
        assert!(!Arc::ptr_eq(&old.case, &fresh.case));
        assert_eq!(registry.reload_counts(), (1, 0, 0));
        assert!(!registry.breaker_open());
    }
}
