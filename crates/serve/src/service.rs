//! The dispatch core: coalescing, fairness, shared prediction, tracing.
//!
//! [`RayService`] turns many tenants' small submissions into the shape
//! the predictor stack is fastest at — large Morton-sorted
//! [`RayBatch`] streams — while keeping tenants isolated behind bounded
//! queues:
//!
//! 1. **Fairness**: each dispatch round drains tenant queues
//!    round-robin (one request per tenant per pass, up to a per-tenant
//!    quota), so a chatty tenant cannot starve a quiet one.
//! 2. **Coalescing**: drained requests are concatenated per
//!    [`RequestClass`] into one batch, Morton-sorted over the scene
//!    bounds (`bvh::stream`), and chunked across the [`JobPool`].
//! 3. **Shared prediction**: every chunk traces through a
//!    [`Predicted`] kernel whose table is the service-wide
//!    [`ConcurrentPredictorTable`], so ray locality discovered by one
//!    tenant's requests accelerates every other tenant's.
//! 4. **Accounting**: per-class latency (submission → round
//!    completion) lands in [`Histogram`]s; predictor and table counters
//!    aggregate across the whole service lifetime.

use crate::queue::{Backpressure, Request, RequestClass, TenantQueue};
use crate::registry::SceneLease;
use rip_bvh::{RayBatch, StacklessKernel, TraversalKernel};
use rip_core::{ConcurrentPredictorTable, Predicted, PredictorConfig, SharedTable, TableStats};
use rip_exec::{Case, JobPool};
use rip_obs::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs for a [`RayService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Predictor configuration shared by every worker (`update_delay` is
    /// usually 0 here: a service trains as results complete, not on the
    /// simulator's in-flight delay model).
    pub predictor: PredictorConfig,
    /// Lock stripes in the shared table (rounded up to a power of two;
    /// the entry budget is divided across them).
    pub shards: usize,
    /// Per-tenant queue capacity (requests beyond it are shed).
    pub queue_capacity: usize,
    /// Max requests drained from one tenant per dispatch round.
    pub fairness_quota: usize,
    /// Rays per traced chunk (the unit of `JobPool` parallelism).
    pub chunk_rays: usize,
    /// Worker parallelism for tracing.
    pub jobs: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            predictor: PredictorConfig {
                update_delay: 0,
                ..PredictorConfig::paper_default()
            },
            shards: 4,
            queue_capacity: 64,
            fairness_quota: 4,
            chunk_rays: 1024,
            jobs: rip_exec::available_parallelism(),
        }
    }
}

/// Per-class accounting: volume plus the latency distribution.
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Requests completed.
    pub requests: u64,
    /// Rays traced.
    pub rays: u64,
    /// Rays that found a hit.
    pub hits: u64,
    /// Request latency in microseconds (submission → round completion).
    pub latency_us: Histogram,
}

/// Lifetime counters for a service instance.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Dispatch rounds executed (including empty ones).
    pub rounds: u64,
    /// Requests completed across all classes.
    pub completed_requests: u64,
    /// Rays traced across all classes.
    pub completed_rays: u64,
    /// Requests shed by backpressure at submission.
    pub shed_requests: u64,
    /// Per-class accounting, indexed by [`RequestClass::index`].
    pub classes: [ClassStats; 3],
}

/// What one dispatch round processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Requests drained and completed this round.
    pub requests: usize,
    /// Rays traced this round.
    pub rays: usize,
}

/// A multi-tenant ray-tracing service over one immutable scene lease.
///
/// # Examples
///
/// ```
/// use rip_bvh::RayBatch;
/// use rip_exec::{CaseCache, CaseKey};
/// use rip_math::{Ray, Vec3};
/// use rip_scene::{SceneId, SceneScale};
/// use rip_serve::{RayService, RequestClass, SceneRegistry, ServiceConfig};
/// use std::sync::Arc;
///
/// let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
/// let lease = registry.get(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
/// let service = RayService::new(lease, 2, ServiceConfig::default());
/// let rays = RayBatch::from_rays(&[Ray::new(Vec3::new(0.5, 0.5, -5.0), Vec3::Z)]);
/// service.submit(0, RequestClass::Primary, rays).unwrap();
/// let round = service.run_round();
/// assert_eq!(round.requests, 1);
/// assert_eq!(service.stats().completed_rays, 1);
/// ```
#[derive(Debug)]
pub struct RayService {
    lease: SceneLease,
    config: ServiceConfig,
    table: Arc<ConcurrentPredictorTable>,
    queues: Vec<TenantQueue>,
    pool: JobPool,
    stats: Mutex<ServiceStats>,
    next_id: AtomicU64,
}

impl RayService {
    /// A service for `tenants` logical clients over the leased scene.
    ///
    /// # Panics
    ///
    /// Panics when the predictor configuration is invalid or its entry
    /// budget does not divide across the configured shards.
    pub fn new(lease: SceneLease, tenants: usize, config: ServiceConfig) -> Self {
        let table = Arc::new(ConcurrentPredictorTable::new(
            config.predictor,
            config.shards,
        ));
        let queues = (0..tenants.max(1))
            .map(|t| TenantQueue::new(t, config.queue_capacity))
            .collect();
        RayService {
            lease,
            config,
            table,
            queues,
            pool: JobPool::new(config.jobs),
            stats: Mutex::new(ServiceStats::default()),
            next_id: AtomicU64::new(0),
        }
    }

    /// Number of tenants this service multiplexes.
    pub fn tenants(&self) -> usize {
        self.queues.len()
    }

    /// The scene lease requests trace against.
    pub fn lease(&self) -> &SceneLease {
        &self.lease
    }

    /// The immutable case (scene + BVH).
    pub fn case(&self) -> &Arc<Case> {
        &self.lease.case
    }

    /// The shared predictor table all tenants learn into.
    pub fn table(&self) -> &Arc<ConcurrentPredictorTable> {
        &self.table
    }

    /// Aggregate table statistics (lookups, hits, evictions).
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Lifetime service counters (cloned snapshot).
    pub fn stats(&self) -> ServiceStats {
        self.stats.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Requests currently queued across all tenants.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Submits `rays` for `tenant`, returning the request id, or sheds
    /// the request with [`Backpressure`] when the tenant's queue is
    /// full.
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is out of range.
    pub fn submit(
        &self,
        tenant: usize,
        class: RequestClass,
        rays: RayBatch,
    ) -> Result<u64, Backpressure> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let result = self.queues[tenant].push(Request {
            id,
            tenant,
            class,
            rays,
            submitted: std::time::Instant::now(),
        });
        if let Err(bp) = result {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.shed_requests += 1;
            rip_obs::Obs::global().add("serve.shed", 1);
            return Err(bp);
        }
        Ok(id)
    }

    /// Runs one dispatch round: drains queues fairly, coalesces per
    /// class, Morton-sorts, traces chunks across the pool through the
    /// shared predictor table, and records per-request latency.
    pub fn run_round(&self) -> RoundReport {
        let drained = self.drain_fair();
        let mut report = RoundReport::default();
        {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.rounds += 1;
        }
        if drained.is_empty() {
            return report;
        }
        let obs = rip_obs::Obs::global();
        let _span = obs
            .span("serve", "round")
            .arg_u64("requests", drained.len() as u64);
        for class in RequestClass::ALL {
            let requests: Vec<&Request> = drained.iter().filter(|r| r.class == class).collect();
            if requests.is_empty() {
                continue;
            }
            let (completed, rays) = self.trace_class(class, &requests);
            report.requests += completed;
            report.rays += rays;
        }
        report
    }

    /// Round-robin drain: one request per tenant per pass, until every
    /// queue is empty or each tenant hit its per-round quota.
    fn drain_fair(&self) -> Vec<Request> {
        let mut drained = Vec::new();
        for _pass in 0..self.config.fairness_quota.max(1) {
            let mut any = false;
            for queue in &self.queues {
                if let Some(request) = queue.pop() {
                    drained.push(request);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        drained
    }

    /// Coalesces, sorts, chunks and traces one class's requests;
    /// returns `(requests_completed, rays_traced)`.
    fn trace_class(&self, class: RequestClass, requests: &[&Request]) -> (usize, usize) {
        // Coalesce into one batch, remembering each request's range.
        let mut coalesced = RayBatch::default();
        let mut ranges = Vec::with_capacity(requests.len());
        for request in requests {
            let start = coalesced.len();
            coalesced.append(&request.rays);
            ranges.push(start..coalesced.len());
        }
        let total = coalesced.len();

        let bvh = &self.lease.case.bvh;
        let (sorted, perm) = coalesced.morton_sorted(&bvh.bounds());
        let chunk = self.config.chunk_rays.max(1);
        let chunks: Vec<std::ops::Range<usize>> = (0..total)
            .step_by(chunk)
            .map(|start| start..(start + chunk).min(total))
            .collect();

        let kind = class.kind();
        let table = &self.table;
        let config = self.config.predictor;
        let hit_chunks: Vec<Vec<bool>> = self.pool.map(&chunks, |range| {
            let shared: Arc<dyn SharedTable> = Arc::clone(table) as Arc<dyn SharedTable>;
            let mut kernel =
                Predicted::with_shared_table(bvh, config, shared, StacklessKernel::new(bvh));
            let mut sub = RayBatch::with_capacity(range.len());
            for i in range.clone() {
                sub.push(sorted.ray(i));
            }
            kernel
                .trace_batch(&sub, kind)
                .iter()
                .map(|r| r.hit.is_some())
                .collect()
        });
        let sorted_hits: Vec<bool> = hit_chunks.into_iter().flatten().collect();
        let hits = perm.unsort(&sorted_hits);

        // Account per request: latency runs submission → now (round end).
        let obs = rip_obs::Obs::global();
        let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        let slot = &mut stats.classes[class.index()];
        for (request, range) in requests.iter().zip(&ranges) {
            let latency_us = request.submitted.elapsed().as_micros() as u64;
            slot.requests += 1;
            slot.rays += range.len() as u64;
            slot.hits += hits[range.clone()].iter().filter(|&&h| h).count() as u64;
            slot.latency_us.record(latency_us);
        }
        stats.completed_requests += requests.len() as u64;
        stats.completed_rays += total as u64;
        obs.add(&format!("serve.rays.{}", class.label()), total as u64);
        obs.add("serve.requests", requests.len() as u64);
        (requests.len(), total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SceneRegistry;
    use rip_exec::{CaseCache, CaseKey};
    use rip_math::{Ray, Vec3};
    use rip_scene::{SceneId, SceneScale};

    fn service(tenants: usize) -> RayService {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let lease = registry.get(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
        RayService::new(
            lease,
            tenants,
            ServiceConfig {
                chunk_rays: 8,
                ..ServiceConfig::default()
            },
        )
    }

    fn down_rays(n: usize, case: &Case) -> RayBatch {
        let bounds = case.bvh.bounds();
        let center = bounds.center();
        (0..n)
            .map(|i| {
                let t = i as f32 / n.max(1) as f32;
                let o = Vec3::new(
                    bounds.min.x + t * (bounds.max.x - bounds.min.x),
                    bounds.max.y + 1.0,
                    center.z,
                );
                Ray::new(o, -Vec3::Y)
            })
            .collect()
    }

    #[test]
    fn round_completes_all_drained_requests() {
        let service = service(3);
        let rays = down_rays(20, service.case());
        for tenant in 0..3 {
            service
                .submit(tenant, RequestClass::Primary, rays.clone())
                .unwrap();
            service
                .submit(tenant, RequestClass::Shadow, rays.clone())
                .unwrap();
        }
        let round = service.run_round();
        assert_eq!(round.requests, 6);
        assert_eq!(round.rays, 120);
        assert_eq!(service.pending(), 0);
        let stats = service.stats();
        assert_eq!(stats.completed_requests, 6);
        assert_eq!(stats.classes[RequestClass::Primary.index()].requests, 3);
        assert_eq!(stats.classes[RequestClass::Shadow.index()].requests, 3);
        assert_eq!(
            stats.classes[RequestClass::Primary.index()]
                .latency_us
                .count(),
            3
        );
        // Down rays over the scene must hit something.
        assert!(stats.classes[RequestClass::Primary.index()].hits > 0);
    }

    #[test]
    fn fairness_quota_bounds_a_chatty_tenant() {
        let service = service(2);
        let rays = down_rays(4, service.case());
        for _ in 0..10 {
            service
                .submit(0, RequestClass::AmbientOcclusion, rays.clone())
                .unwrap();
        }
        service
            .submit(1, RequestClass::AmbientOcclusion, rays.clone())
            .unwrap();
        let round = service.run_round();
        // quota 4 for tenant 0 + the single request of tenant 1.
        assert_eq!(round.requests, 5);
        assert_eq!(service.pending(), 6);
    }

    #[test]
    fn shared_table_learns_across_rounds_and_tenants() {
        let service = service(2);
        let rays = down_rays(64, service.case());
        service
            .submit(0, RequestClass::Shadow, rays.clone())
            .unwrap();
        service.run_round();
        let cold = service.table_stats();
        service.submit(1, RequestClass::Shadow, rays).unwrap();
        service.run_round();
        let warm = service.table_stats();
        assert!(
            warm.tag_hits > cold.tag_hits,
            "tenant 1 must hit entries trained by tenant 0 ({} vs {})",
            warm.tag_hits,
            cold.tag_hits
        );
    }

    #[test]
    fn empty_round_is_cheap_and_counted() {
        let service = service(1);
        assert_eq!(service.run_round(), RoundReport::default());
        assert_eq!(service.stats().rounds, 1);
    }
}
