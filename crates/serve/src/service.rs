//! The dispatch core: admission, coalescing, fault-isolated tracing,
//! graceful degradation.
//!
//! [`RayService`] turns many tenants' small submissions into the shape
//! the predictor stack is fastest at — large Morton-sorted
//! [`RayBatch`] streams — while keeping tenants isolated behind bounded
//! queues and keeping the *service* isolated from any single request's
//! failure:
//!
//! 1. **Admission**: a per-tenant token bucket and a queue-age deadline
//!    estimate refuse work at the cheapest point
//!    ([`Rejection::RateLimited`] / [`Rejection::DeadlineUnmeetable`]),
//!    before bounded queues shed the rest as
//!    [`Rejection::Backpressure`].
//! 2. **Fairness**: each dispatch round drains tenant queues
//!    round-robin (one request per tenant per pass, up to a per-tenant
//!    quota), so a chatty tenant cannot starve a quiet one.
//! 3. **Coalescing**: drained requests are concatenated per
//!    [`RequestClass`] into one batch, Morton-sorted over the scene
//!    bounds (`bvh::stream`), and chunked across the [`JobPool`].
//! 4. **Fault isolation**: every chunk attempt runs under
//!    [`Fault::catch`] with `RIP_FAULT_INJECT` / [`ChaosConfig`]
//!    injection applied first. A poisoned chunk is retried within its
//!    covered requests' deadline budget and, if it still fails, fails
//!    exactly those requests with a typed [`Fault`] — never the
//!    dispatch round.
//! 5. **Degradation**: a sliding-window [`ModeController`] walks the
//!    `Full → NoPredict → Survival` ladder on deadline-miss/fault
//!    pressure; `NoPredict` bypasses the shared table (results stay
//!    bit-identical — the §4 transparency contract), `Survival` also
//!    shrinks chunks and quotas.
//! 6. **Accounting**: per-class latency (submission → round
//!    completion, measured on the service's [`rip_obs::Clock`]),
//!    deadline misses, expiries, failures, retries and mode history
//!    land in [`ServiceStats`].

use crate::admission::{AdmissionConfig, AdmissionControl};
use crate::chaos::{apply_chunk_injections, ChaosConfig};
use crate::mode::{DegradeConfig, ModeController, ModeTransition, ServiceMode};
use crate::queue::{Backpressure, Request, RequestClass, TenantQueue};
use crate::registry::SceneLease;
use crate::Rejection;
use rip_bvh::{RayBatch, StacklessKernel, TraversalKernel};
use rip_core::{ConcurrentPredictorTable, Predicted, PredictorConfig, SharedTable, TableStats};
use rip_exec::{Case, Fault, FaultKind, InjectionPlan, JobPool, RetryPolicy};
use rip_obs::{Histogram, Obs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs for a [`RayService`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Predictor configuration shared by every worker (`update_delay` is
    /// usually 0 here: a service trains as results complete, not on the
    /// simulator's in-flight delay model).
    pub predictor: PredictorConfig,
    /// Lock stripes in the shared table (rounded up to a power of two;
    /// the entry budget is divided across them).
    pub shards: usize,
    /// Per-tenant queue capacity (requests beyond it are shed).
    pub queue_capacity: usize,
    /// Max requests drained from one tenant per dispatch round.
    pub fairness_quota: usize,
    /// Rays per traced chunk (the unit of `JobPool` parallelism).
    pub chunk_rays: usize,
    /// Worker parallelism for tracing.
    pub jobs: usize,
    /// Admission-control knobs (token bucket off by default).
    pub admission: AdmissionConfig,
    /// Retry policy for faulted chunks. The default retries twice with
    /// zero backoff: a service must not sleep inside a dispatch round.
    pub retry: RetryPolicy,
    /// Graceful-degradation ladder knobs.
    pub degrade: DegradeConfig,
    /// Probabilistic chunk fault injection (off by default; the chaos
    /// harness turns it on).
    pub chaos: ChaosConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            predictor: PredictorConfig {
                update_delay: 0,
                ..PredictorConfig::paper_default()
            },
            shards: 4,
            queue_capacity: 64,
            fairness_quota: 4,
            chunk_rays: 1024,
            jobs: rip_exec::available_parallelism(),
            admission: AdmissionConfig::default(),
            retry: RetryPolicy {
                max_attempts: 3,
                base_backoff: std::time::Duration::ZERO,
            },
            degrade: DegradeConfig::default(),
            chaos: ChaosConfig::default(),
        }
    }
}

/// Per-class accounting: volume, failure modes, and the latency
/// distribution.
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Requests completed (traced to the end, on time or not).
    pub requests: u64,
    /// Rays traced.
    pub rays: u64,
    /// Rays that found a hit.
    pub hits: u64,
    /// Completed requests that finished past their deadline.
    pub deadline_miss: u64,
    /// Requests dropped at dispatch because their deadline had already
    /// passed while queued.
    pub expired: u64,
    /// Requests failed by an unrecovered chunk fault.
    pub failed: u64,
    /// Requests shed by backpressure at submission.
    pub shed: u64,
    /// Request latency in microseconds (submission → round completion,
    /// on the service clock).
    pub latency_us: Histogram,
}

/// Lifetime counters for a service instance.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Dispatch rounds executed (including empty ones).
    pub rounds: u64,
    /// Requests admitted into a queue.
    pub admitted_requests: u64,
    /// Requests completed across all classes.
    pub completed_requests: u64,
    /// Rays traced across all classes.
    pub completed_rays: u64,
    /// Requests shed by backpressure at submission.
    pub shed_requests: u64,
    /// Requests refused by the admission token bucket.
    pub rate_limited: u64,
    /// Requests refused because their deadline was already unmeetable.
    pub rejected_unmeetable: u64,
    /// Queued requests dropped at dispatch with an expired deadline.
    pub expired_requests: u64,
    /// Requests failed by an unrecovered chunk fault.
    pub failed_requests: u64,
    /// Completed requests that finished past their deadline.
    pub deadline_miss_requests: u64,
    /// Chunk attempts that were retries (attempt ≥ 2).
    pub retried_chunks: u64,
    /// Mode-ladder transitions taken (including forced ones).
    pub mode_transitions: u64,
    /// Rounds spent in each mode, indexed by [`ServiceMode::index`].
    pub mode_rounds: [u64; 3],
    /// Request failures by fault kind, indexed by
    /// [`FaultKind::index`](rip_exec::FaultKind::index). Expired and
    /// failed requests each count once under their attributed kind.
    pub faults_by_kind: [u64; 6],
    /// Per-class accounting, indexed by [`RequestClass::index`].
    pub classes: [ClassStats; 3],
}

impl ServiceStats {
    /// Requests that reached a terminal outcome (completed, expired, or
    /// failed).
    pub fn finished_requests(&self) -> u64 {
        self.completed_requests + self.expired_requests + self.failed_requests
    }

    /// The fraction of finished requests that completed within their
    /// deadline (1.0 when nothing has finished). This is the SLO the
    /// chaos harness gates on.
    pub fn availability(&self) -> f64 {
        let finished = self.finished_requests();
        if finished == 0 {
            return 1.0;
        }
        (self.completed_requests - self.deadline_miss_requests) as f64 / finished as f64
    }
}

/// What one dispatch round processed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundReport {
    /// Requests drained and completed this round.
    pub requests: usize,
    /// Rays traced this round.
    pub rays: usize,
    /// Queued requests dropped with an expired deadline.
    pub expired: usize,
    /// Requests failed by an unrecovered chunk fault.
    pub failed: usize,
    /// The mode the round executed under.
    pub mode: ServiceMode,
}

/// Per-chunk dispatch plan: the sorted-index range to trace plus the
/// requests it covers (for fault attribution and the retry deadline
/// budget).
struct ChunkPlan {
    /// Sorted-stream index range.
    range: std::ops::Range<usize>,
    /// Ordinals (into the round's per-class request list) of every
    /// request with at least one ray in this chunk.
    covered: Vec<u32>,
    /// The tightest deadline among covered requests (retries stop once
    /// it passes).
    min_deadline_us: Option<u64>,
}

/// What one class's trace contributed to the round.
#[derive(Default)]
struct ClassOutcome {
    completed: usize,
    failed: usize,
    rays: usize,
    /// Completed-but-late plus failed (the mode controller's "bad").
    bad: u64,
}

/// A multi-tenant ray-tracing service over one immutable scene lease.
///
/// # Examples
///
/// ```
/// use rip_bvh::RayBatch;
/// use rip_exec::{CaseCache, CaseKey};
/// use rip_math::{Ray, Vec3};
/// use rip_scene::{SceneId, SceneScale};
/// use rip_serve::{RayService, RequestClass, SceneRegistry, ServiceConfig};
/// use std::sync::Arc;
///
/// let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
/// let lease = registry.get(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
/// let service = RayService::new(lease, 2, ServiceConfig::default());
/// let rays = RayBatch::from_rays(&[Ray::new(Vec3::new(0.5, 0.5, -5.0), Vec3::Z)]);
/// service.submit(0, RequestClass::Primary, rays).unwrap();
/// let round = service.run_round();
/// assert_eq!(round.requests, 1);
/// assert_eq!(service.stats().completed_rays, 1);
/// ```
#[derive(Debug)]
pub struct RayService {
    lease: SceneLease,
    config: ServiceConfig,
    table: Arc<ConcurrentPredictorTable>,
    queues: Vec<TenantQueue>,
    pool: JobPool,
    admission: AdmissionControl,
    controller: Mutex<ModeController>,
    obs: Arc<Obs>,
    stats: Mutex<ServiceStats>,
    next_id: AtomicU64,
}

impl RayService {
    /// A service for `tenants` logical clients over the leased scene,
    /// timestamped by the global [`Obs`] clock.
    ///
    /// # Panics
    ///
    /// Panics when the predictor configuration is invalid or its entry
    /// budget does not divide across the configured shards.
    pub fn new(lease: SceneLease, tenants: usize, config: ServiceConfig) -> Self {
        RayService::with_obs(lease, tenants, config, Arc::clone(Obs::global()))
    }

    /// A service timestamped by an explicit [`Obs`] (tests pin a
    /// logical clock here for deterministic latency and deadline
    /// decisions).
    pub fn with_obs(
        lease: SceneLease,
        tenants: usize,
        config: ServiceConfig,
        obs: Arc<Obs>,
    ) -> Self {
        let table = Arc::new(ConcurrentPredictorTable::new(
            config.predictor,
            config.shards,
        ));
        let queues = (0..tenants.max(1))
            .map(|t| TenantQueue::new(t, config.queue_capacity))
            .collect();
        RayService {
            lease,
            table,
            queues,
            pool: JobPool::new(config.jobs),
            admission: AdmissionControl::new(tenants.max(1), config.admission),
            controller: Mutex::new(ModeController::new(config.degrade)),
            obs,
            stats: Mutex::new(ServiceStats::default()),
            next_id: AtomicU64::new(0),
            config,
        }
    }

    /// Number of tenants this service multiplexes.
    pub fn tenants(&self) -> usize {
        self.queues.len()
    }

    /// The scene lease requests trace against.
    pub fn lease(&self) -> &SceneLease {
        &self.lease
    }

    /// The immutable case (scene + BVH).
    pub fn case(&self) -> &Arc<Case> {
        &self.lease.case
    }

    /// The shared predictor table all tenants learn into.
    pub fn table(&self) -> &Arc<ConcurrentPredictorTable> {
        &self.table
    }

    /// Aggregate table statistics (lookups, hits, evictions).
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Lifetime service counters (cloned snapshot).
    pub fn stats(&self) -> ServiceStats {
        self.stats.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Requests currently queued across all tenants.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// The clock all latency and deadline arithmetic reads.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The current reading of the service clock, µs. Deadlines passed to
    /// [`RayService::submit_with_deadline`] are absolute values of this
    /// clock.
    pub fn now_us(&self) -> u64 {
        self.obs.now_us()
    }

    /// The current degradation-ladder mode.
    pub fn mode(&self) -> ServiceMode {
        self.controller
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .mode()
    }

    /// Pins the degradation ladder to `mode` (harness hook: chaos and
    /// A/B runs compare rungs directly). Counted as a transition when it
    /// changes the mode.
    pub fn force_mode(&self, mode: ServiceMode) {
        let transition = self
            .controller
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .force(mode);
        if let Some(t) = transition {
            self.record_transition(t);
        }
    }

    /// Submits `rays` for `tenant` with no deadline. See
    /// [`RayService::submit_with_deadline`].
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is out of range.
    pub fn submit(
        &self,
        tenant: usize,
        class: RequestClass,
        rays: RayBatch,
    ) -> Result<u64, Rejection> {
        self.submit_with_deadline(tenant, class, rays, None)
    }

    /// Submits `rays` for `tenant`, returning the request id, or a
    /// typed [`Rejection`]. `deadline_us` is an absolute reading of the
    /// service clock ([`RayService::now_us`]); admission refuses
    /// deadlines the queue-age estimate already rules out, dispatch
    /// drops requests that expire while queued, and completions past
    /// the deadline count as SLO misses.
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is out of range.
    pub fn submit_with_deadline(
        &self,
        tenant: usize,
        class: RequestClass,
        rays: RayBatch,
        deadline_us: Option<u64>,
    ) -> Result<u64, Rejection> {
        let now_us = self.obs.now_us();
        if let Err(retry_after_us) = self.admission.take_token(tenant, now_us) {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.rate_limited += 1;
            drop(stats);
            self.obs.add("serve.rate_limited", 1);
            return Err(Rejection::RateLimited {
                tenant,
                class,
                retry_after_us,
            });
        }
        if let Some(deadline_us) = deadline_us {
            if let Some(estimated_done_us) =
                self.admission
                    .deadline_unmeetable(now_us, self.pending(), deadline_us)
            {
                let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
                stats.rejected_unmeetable += 1;
                drop(stats);
                self.obs.add("serve.rejected_unmeetable", 1);
                return Err(Rejection::DeadlineUnmeetable {
                    tenant,
                    class,
                    deadline_us,
                    estimated_done_us,
                });
            }
        }
        // Check fullness before allocating an id, so shed submissions
        // never consume one (ids stay dense over admitted requests; the
        // re-check inside `push` still guards concurrent submitters).
        if self.queues[tenant].is_full() {
            return Err(self.shed(Backpressure {
                tenant,
                capacity: self.queues[tenant].capacity(),
                depth: self.queues[tenant].len(),
                class,
            }));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let result = self.queues[tenant].push(Request {
            id,
            tenant,
            class,
            rays,
            submitted_us: now_us,
            deadline_us,
        });
        if let Err(bp) = result {
            return Err(self.shed(bp));
        }
        let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        stats.admitted_requests += 1;
        Ok(id)
    }

    /// Accounts one backpressure shed and returns it as a [`Rejection`].
    fn shed(&self, bp: Backpressure) -> Rejection {
        {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.shed_requests += 1;
            stats.classes[bp.class.index()].shed += 1;
        }
        self.obs.add("serve.shed", 1);
        self.obs.add(&format!("serve.shed.{}", bp.class.label()), 1);
        bp.into()
    }

    /// Runs one dispatch round: drains queues fairly (quota per the
    /// current mode), expires stale deadlines, coalesces per class,
    /// Morton-sorts, traces chunks across the pool under fault
    /// isolation, records per-request outcomes, and feeds round health
    /// to the degradation ladder.
    pub fn run_round(&self) -> RoundReport {
        let mode = self.mode();
        let (quota, chunk_rays, predict) = match mode {
            ServiceMode::Full => (self.config.fairness_quota, self.config.chunk_rays, true),
            ServiceMode::NoPredict => (self.config.fairness_quota, self.config.chunk_rays, false),
            ServiceMode::Survival => (
                self.config.degrade.survival_quota,
                self.config.degrade.survival_chunk_rays,
                false,
            ),
        };
        let round_index = {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.rounds += 1;
            stats.mode_rounds[mode.index()] += 1;
            stats.rounds - 1
        };
        let drained = self.drain_fair(quota);
        let mut report = RoundReport {
            mode,
            ..RoundReport::default()
        };
        if drained.is_empty() {
            self.observe_health(0, 0);
            return report;
        }

        let _span = self
            .obs
            .span("serve", "round")
            .arg_u64("requests", drained.len() as u64)
            .arg("mode", mode.label());

        // Expire stale deadlines at dispatch instead of tracing dead
        // work. Every expiry is attributed as a DeadlineExceeded fault.
        let now_us = self.obs.now_us();
        let (expired, live): (Vec<Request>, Vec<Request>) =
            drained.into_iter().partition(|r| r.expired(now_us));
        report.expired = expired.len();
        if !expired.is_empty() {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            for request in &expired {
                stats.expired_requests += 1;
                stats.classes[request.class.index()].expired += 1;
                stats.faults_by_kind[FaultKind::DeadlineExceeded.index()] += 1;
            }
            drop(stats);
            for request in &expired {
                self.obs
                    .add(&format!("serve.expired.{}", request.class.label()), 1);
            }
        }

        let plan = InjectionPlan::from_env();
        let mut bad: u64 = expired.len() as u64;
        for class in RequestClass::ALL {
            let requests: Vec<&Request> = live.iter().filter(|r| r.class == class).collect();
            if requests.is_empty() {
                continue;
            }
            let outcome =
                self.trace_class(class, &requests, &plan, round_index, chunk_rays, predict);
            report.requests += outcome.completed;
            report.failed += outcome.failed;
            report.rays += outcome.rays;
            bad += outcome.bad;
        }
        let outcomes = (report.requests + report.failed + report.expired) as u64;
        self.observe_health(outcomes, bad);
        report
    }

    /// Feeds one round's health to the mode controller and records any
    /// transition it causes.
    fn observe_health(&self, outcomes: u64, bad: u64) {
        let transition = self
            .controller
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .observe_round(outcomes, bad);
        if let Some(t) = transition {
            self.record_transition(t);
        }
    }

    /// Counts and logs a mode transition.
    fn record_transition(&self, t: ModeTransition) {
        {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.mode_transitions += 1;
        }
        self.obs.add("serve.mode.transition", 1);
        self.obs
            .event("serve", "mode_transition")
            .arg("from", t.from.label())
            .arg("to", t.to.label())
            .arg("bad_ratio", format!("{:.4}", t.bad_ratio))
            .emit();
    }

    /// Round-robin drain: one request per tenant per pass, until every
    /// queue is empty or each tenant hit its per-round quota.
    fn drain_fair(&self, quota: usize) -> Vec<Request> {
        let mut drained = Vec::new();
        for _pass in 0..quota.max(1) {
            let mut any = false;
            for queue in &self.queues {
                if let Some(request) = queue.pop() {
                    drained.push(request);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        drained
    }

    /// Coalesces, sorts, chunks and traces one class's requests under
    /// fault isolation.
    fn trace_class(
        &self,
        class: RequestClass,
        requests: &[&Request],
        plan: &InjectionPlan,
        round: u64,
        chunk_rays: usize,
        predict: bool,
    ) -> ClassOutcome {
        // Coalesce into one batch, remembering each request's range.
        let mut coalesced = RayBatch::default();
        let mut starts = Vec::with_capacity(requests.len());
        for request in requests {
            starts.push(coalesced.len());
            coalesced.append(&request.rays);
        }
        let total = coalesced.len();

        let bvh = &self.lease.case.bvh;
        let (sorted, perm) = coalesced.morton_sorted(&bvh.bounds());
        let gather = perm.gather();
        // Map an original ray index back to the request it came from
        // (ranges are contiguous in submission order).
        let ordinal_of =
            |original: usize| -> u32 { (starts.partition_point(|&s| s <= original) - 1) as u32 };
        let chunk = chunk_rays.max(1);
        let chunks: Vec<ChunkPlan> = (0..total)
            .step_by(chunk)
            .map(|start| {
                let range = start..(start + chunk).min(total);
                let mut covered: Vec<u32> = range
                    .clone()
                    .map(|i| ordinal_of(gather[i] as usize))
                    .collect();
                covered.sort_unstable();
                covered.dedup();
                let min_deadline_us = covered
                    .iter()
                    .filter_map(|&ord| requests[ord as usize].deadline_us)
                    .min();
                ChunkPlan {
                    range,
                    covered,
                    min_deadline_us,
                }
            })
            .collect();

        let kind = class.kind();
        let table = &self.table;
        let config = self.config.predictor;
        let retry = self.config.retry;
        let chaos = self.config.chaos;
        let obs = &self.obs;
        // Each chunk attempt runs under `Fault::catch` with injections
        // applied first; a fault is retried (all kinds except
        // DeadlineExceeded) while attempts and the covered requests'
        // deadline budget allow. The closure never panics out, so a
        // poisoned chunk can never abort the dispatch round.
        let results: Vec<(Result<Vec<bool>, Fault>, u32)> = self.pool.map(&chunks, |chunk_plan| {
            let chunk_index = (chunk_plan.range.start / chunk) as u64;
            let mut attempt: u32 = 1;
            loop {
                let outcome = Fault::catch(|| {
                    apply_chunk_injections(plan, &chaos, round, chunk_index, attempt)?;
                    let shared: Arc<dyn SharedTable> = Arc::clone(table) as Arc<dyn SharedTable>;
                    let mut sub = RayBatch::with_capacity(chunk_plan.range.len());
                    for i in chunk_plan.range.clone() {
                        sub.push(sorted.ray(i));
                    }
                    let hits: Vec<bool> = if predict {
                        let mut kernel = Predicted::with_shared_table(
                            bvh,
                            config,
                            shared,
                            StacklessKernel::new(bvh),
                        );
                        kernel
                            .trace_batch(&sub, kind)
                            .iter()
                            .map(|r| r.hit.is_some())
                            .collect()
                    } else {
                        let mut kernel = StacklessKernel::new(bvh);
                        kernel
                            .trace_batch(&sub, kind)
                            .iter()
                            .map(|r| r.hit.is_some())
                            .collect()
                    };
                    Ok(hits)
                });
                let fault = match outcome {
                    Ok(hits) => return (Ok(hits), attempt),
                    Err(fault) => fault,
                };
                if fault.kind == FaultKind::DeadlineExceeded || attempt >= retry.max_attempts.max(1)
                {
                    return (Err(fault), attempt);
                }
                // The clock is only read on the fault path of a
                // deadline-carrying chunk, so fault-free logical-clock
                // runs stay deterministic.
                if let Some(deadline_us) = chunk_plan.min_deadline_us {
                    if obs.now_us() > deadline_us {
                        return (
                            Err(Fault::deadline_exceeded(format!(
                                "retry budget exhausted after {fault} (attempt {attempt})"
                            ))),
                            attempt,
                        );
                    }
                }
                let pause = retry.backoff(attempt + 1, round << 32 | chunk_index);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                attempt += 1;
            }
        });

        // Assemble hits; attribute failed chunks to the requests they
        // cover (first fault wins per request).
        let mut sorted_hits = vec![false; total];
        let mut request_fault: Vec<Option<FaultKind>> = vec![None; requests.len()];
        let mut retried: u64 = 0;
        for (chunk_plan, (result, attempts)) in chunks.iter().zip(&results) {
            retried += u64::from(attempts.saturating_sub(1));
            match result {
                Ok(hits) => {
                    for (offset, hit) in chunk_plan.range.clone().zip(hits) {
                        sorted_hits[offset] = *hit;
                    }
                }
                Err(fault) => {
                    for &ord in &chunk_plan.covered {
                        request_fault[ord as usize].get_or_insert(fault.kind);
                    }
                    self.obs
                        .add(&format!("serve.chunk_fault.{}", fault.kind.slug()), 1);
                }
            }
        }
        let hits = perm.unsort(&sorted_hits);

        // Account per request: latency runs submission → now (round
        // end), on the service clock.
        let end_us = self.obs.now_us();
        let mut outcome = ClassOutcome::default();
        let slot_index = class.index();
        let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        let mut completed_rays: u64 = 0;
        for (ord, request) in requests.iter().enumerate() {
            let range = starts[ord]..starts.get(ord + 1).copied().unwrap_or(total);
            if let Some(fault_kind) = request_fault[ord] {
                stats.classes[slot_index].failed += 1;
                stats.failed_requests += 1;
                stats.faults_by_kind[fault_kind.index()] += 1;
                outcome.failed += 1;
                continue;
            }
            let latency_us = end_us.saturating_sub(request.submitted_us);
            let slot = &mut stats.classes[slot_index];
            slot.requests += 1;
            slot.rays += range.len() as u64;
            slot.hits += hits[range.clone()].iter().filter(|&&h| h).count() as u64;
            slot.latency_us.record(latency_us);
            if request.deadline_us.is_some_and(|d| end_us > d) {
                slot.deadline_miss += 1;
                stats.deadline_miss_requests += 1;
                outcome.bad += 1;
            }
            completed_rays += range.len() as u64;
            outcome.completed += 1;
            outcome.rays += range.len();
            self.admission.observe_service_us(latency_us.max(1));
        }
        outcome.bad += outcome.failed as u64;
        stats.completed_requests += outcome.completed as u64;
        stats.completed_rays += completed_rays;
        stats.retried_chunks += retried;
        drop(stats);
        self.obs
            .add(&format!("serve.rays.{}", class.label()), completed_rays);
        self.obs.add("serve.requests", outcome.completed as u64);
        if retried > 0 {
            self.obs.add("serve.chunk_retries", retried);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SceneRegistry;
    use rip_exec::{CaseCache, CaseKey};
    use rip_math::{Ray, Vec3};
    use rip_scene::{SceneId, SceneScale};

    fn service(tenants: usize) -> RayService {
        service_with(
            tenants,
            ServiceConfig {
                chunk_rays: 8,
                ..ServiceConfig::default()
            },
        )
    }

    fn service_with(tenants: usize, config: ServiceConfig) -> RayService {
        let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
        let lease = registry.get(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
        RayService::new(lease, tenants, config)
    }

    fn down_rays(n: usize, case: &Case) -> RayBatch {
        let bounds = case.bvh.bounds();
        let center = bounds.center();
        (0..n)
            .map(|i| {
                let t = i as f32 / n.max(1) as f32;
                let o = Vec3::new(
                    bounds.min.x + t * (bounds.max.x - bounds.min.x),
                    bounds.max.y + 1.0,
                    center.z,
                );
                Ray::new(o, -Vec3::Y)
            })
            .collect()
    }

    #[test]
    fn round_completes_all_drained_requests() {
        let service = service(3);
        let rays = down_rays(20, service.case());
        for tenant in 0..3 {
            service
                .submit(tenant, RequestClass::Primary, rays.clone())
                .unwrap();
            service
                .submit(tenant, RequestClass::Shadow, rays.clone())
                .unwrap();
        }
        let round = service.run_round();
        assert_eq!(round.requests, 6);
        assert_eq!(round.rays, 120);
        assert_eq!(round.failed, 0);
        assert_eq!(round.expired, 0);
        assert_eq!(round.mode, ServiceMode::Full);
        assert_eq!(service.pending(), 0);
        let stats = service.stats();
        assert_eq!(stats.completed_requests, 6);
        assert_eq!(stats.admitted_requests, 6);
        assert_eq!(stats.classes[RequestClass::Primary.index()].requests, 3);
        assert_eq!(stats.classes[RequestClass::Shadow.index()].requests, 3);
        assert_eq!(
            stats.classes[RequestClass::Primary.index()]
                .latency_us
                .count(),
            3
        );
        // Down rays over the scene must hit something.
        assert!(stats.classes[RequestClass::Primary.index()].hits > 0);
        assert_eq!(stats.availability(), 1.0);
    }

    #[test]
    fn fairness_quota_bounds_a_chatty_tenant() {
        let service = service(2);
        let rays = down_rays(4, service.case());
        for _ in 0..10 {
            service
                .submit(0, RequestClass::AmbientOcclusion, rays.clone())
                .unwrap();
        }
        service
            .submit(1, RequestClass::AmbientOcclusion, rays.clone())
            .unwrap();
        let round = service.run_round();
        // quota 4 for tenant 0 + the single request of tenant 1.
        assert_eq!(round.requests, 5);
        assert_eq!(service.pending(), 6);
    }

    #[test]
    fn shared_table_learns_across_rounds_and_tenants() {
        let service = service(2);
        let rays = down_rays(64, service.case());
        service
            .submit(0, RequestClass::Shadow, rays.clone())
            .unwrap();
        service.run_round();
        let cold = service.table_stats();
        service.submit(1, RequestClass::Shadow, rays).unwrap();
        service.run_round();
        let warm = service.table_stats();
        assert!(
            warm.tag_hits > cold.tag_hits,
            "tenant 1 must hit entries trained by tenant 0 ({} vs {})",
            warm.tag_hits,
            cold.tag_hits
        );
    }

    #[test]
    fn empty_round_is_cheap_and_counted() {
        let service = service(1);
        assert_eq!(service.run_round(), RoundReport::default());
        assert_eq!(service.stats().rounds, 1);
        assert_eq!(service.stats().mode_rounds[ServiceMode::Full.index()], 1);
    }

    #[test]
    fn no_predict_mode_returns_identical_hits() {
        // §4's transparency contract, exploited by the ladder: dropping
        // prediction must not change a single hit.
        let full = service(1);
        let rays = down_rays(64, full.case());
        full.submit(0, RequestClass::Primary, rays.clone()).unwrap();
        full.run_round();
        let full_stats = full.stats();

        let degraded = service(1);
        degraded.force_mode(ServiceMode::NoPredict);
        degraded.submit(0, RequestClass::Primary, rays).unwrap();
        let round = degraded.run_round();
        assert_eq!(round.mode, ServiceMode::NoPredict);
        let degraded_stats = degraded.stats();
        assert_eq!(
            full_stats.classes[RequestClass::Primary.index()].hits,
            degraded_stats.classes[RequestClass::Primary.index()].hits,
        );
        // And the shared table saw no traffic in NoPredict.
        assert_eq!(degraded.table_stats().lookups, 0);
        assert_eq!(degraded_stats.mode_transitions, 1);
    }

    #[test]
    fn survival_mode_shrinks_the_round() {
        let service = service_with(
            2,
            ServiceConfig {
                chunk_rays: 8,
                fairness_quota: 4,
                ..ServiceConfig::default()
            },
        );
        let rays = down_rays(4, service.case());
        for _ in 0..4 {
            service
                .submit(0, RequestClass::Primary, rays.clone())
                .unwrap();
        }
        service.force_mode(ServiceMode::Survival);
        let round = service.run_round();
        // survival_quota (default 1) caps the drain.
        assert_eq!(round.requests, 1);
        assert_eq!(round.mode, ServiceMode::Survival);
        assert_eq!(service.pending(), 3);
    }

    #[test]
    fn expired_requests_are_dropped_not_traced() {
        let service = service(1);
        let rays = down_rays(8, service.case());
        let past = service.now_us().max(1) - 1;
        // Admission only refuses deadlines its estimate rules out; with
        // no completed requests the estimate is `now`, so a deadline of
        // `now - 1` must be refused and one far future admitted.
        assert!(matches!(
            service.submit_with_deadline(0, RequestClass::Primary, rays.clone(), Some(past)),
            Err(Rejection::DeadlineUnmeetable { .. })
        ));
        let id = service
            .submit_with_deadline(0, RequestClass::Primary, rays, Some(u64::MAX))
            .unwrap();
        assert!(id < u64::MAX);
        let round = service.run_round();
        assert_eq!(round.requests, 1);
        assert_eq!(round.expired, 0);
        let stats = service.stats();
        assert_eq!(stats.rejected_unmeetable, 1);
        assert_eq!(stats.expired_requests, 0);
    }

    #[test]
    fn rate_limit_rejects_with_retry_budget() {
        let service = service_with(
            1,
            ServiceConfig {
                chunk_rays: 8,
                admission: AdmissionConfig {
                    rate_per_tenant: 1.0,
                    burst: 1.0,
                },
                ..ServiceConfig::default()
            },
        );
        let rays = down_rays(2, service.case());
        service
            .submit(0, RequestClass::Primary, rays.clone())
            .unwrap();
        let err = service.submit(0, RequestClass::Primary, rays).unwrap_err();
        assert!(matches!(err, Rejection::RateLimited { retry_after_us, .. } if retry_after_us > 0));
        assert_eq!(service.stats().rate_limited, 1);
        // The rejected request never reached a queue.
        assert_eq!(service.pending(), 1);
    }

    #[test]
    fn injected_chunk_panics_fail_requests_not_rounds() {
        // All chunks panic on every attempt: each request must fail with
        // a typed Panic fault, and the round itself must complete.
        let service = service_with(
            2,
            ServiceConfig {
                chunk_rays: 8,
                chaos: ChaosConfig {
                    panic_rate: 1.0,
                    panic_attempts: u32::MAX,
                    seed: 9,
                    ..ChaosConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let rays = down_rays(16, service.case());
        for tenant in 0..2 {
            service
                .submit(tenant, RequestClass::Primary, rays.clone())
                .unwrap();
        }
        let round = service.run_round();
        assert_eq!(round.requests, 0);
        assert_eq!(round.failed, 2);
        let stats = service.stats();
        assert_eq!(stats.failed_requests, 2);
        assert_eq!(stats.faults_by_kind[FaultKind::Panic.index()], 2);
        assert_eq!(stats.completed_requests, 0);
        // Retries were attempted before giving up.
        assert!(stats.retried_chunks > 0);
    }

    #[test]
    fn flaky_chunks_recover_within_retry_budget() {
        // Every chunk fails once then succeeds: with max_attempts 3 the
        // round completes everything, counting the retries.
        let service = service_with(
            1,
            ServiceConfig {
                chunk_rays: 8,
                chaos: ChaosConfig {
                    flaky_rate: 1.0,
                    flaky_attempts: 1,
                    seed: 5,
                    ..ChaosConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        let rays = down_rays(32, service.case());
        service.submit(0, RequestClass::Primary, rays).unwrap();
        let round = service.run_round();
        assert_eq!(round.requests, 1);
        assert_eq!(round.failed, 0);
        let stats = service.stats();
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(
            stats.retried_chunks, 4,
            "4 chunks of 8 rays, one retry each"
        );
    }

    #[test]
    fn sustained_failures_walk_the_ladder_down() {
        let service = service_with(
            1,
            ServiceConfig {
                chunk_rays: 8,
                chaos: ChaosConfig {
                    panic_rate: 1.0,
                    seed: 3,
                    ..ChaosConfig::default()
                },
                degrade: DegradeConfig {
                    window_rounds: 2,
                    cooldown_rounds: 1,
                    ..DegradeConfig::default()
                },
                retry: RetryPolicy::none(),
                ..ServiceConfig::default()
            },
        );
        let rays = down_rays(8, service.case());
        for _ in 0..8 {
            let _ = service.submit(0, RequestClass::Primary, rays.clone());
            service.run_round();
        }
        assert_eq!(service.mode(), ServiceMode::Survival);
        let stats = service.stats();
        assert!(stats.mode_transitions >= 2);
        assert!(stats.mode_rounds[ServiceMode::Full.index()] >= 2);
        assert!(stats.mode_rounds[ServiceMode::Survival.index()] >= 1);
    }
}
