//! End-to-end request-lifecycle tests on a deterministic logical
//! clock.
//!
//! Every service here is pinned to its own `Obs` with
//! `ClockMode::Logical` (each clock read returns the next tick), so
//! latency and deadline decisions are pure functions of the call
//! sequence — no wall-clock flakiness, byte-stable assertions.

use rip_bvh::RayBatch;
use rip_exec::{CaseCache, CaseKey, FaultKind};
use rip_math::{Ray, Vec3};
use rip_obs::{ClockMode, Obs};
use rip_scene::{SceneId, SceneScale};
use rip_serve::{
    ChaosConfig, RayService, Rejection, RequestClass, SceneRegistry, ServiceConfig, ServiceMode,
};
use std::sync::Arc;

fn logical_service(tenants: usize, config: ServiceConfig) -> RayService {
    let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
    let lease = registry.get(CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16));
    RayService::with_obs(
        lease,
        tenants,
        config,
        Arc::new(Obs::new(ClockMode::Logical)),
    )
}

fn down_rays(n: usize, service: &RayService) -> RayBatch {
    let bounds = service.case().bvh.bounds();
    let center = bounds.center();
    (0..n)
        .map(|i| {
            let t = i as f32 / n.max(1) as f32;
            let o = Vec3::new(
                bounds.min.x + t * (bounds.max.x - bounds.min.x),
                bounds.max.y + 1.0,
                center.z,
            );
            Ray::new(o, -Vec3::Y)
        })
        .collect()
}

#[test]
fn queued_requests_expire_deterministically_at_dispatch() {
    let service = logical_service(
        1,
        ServiceConfig {
            chunk_rays: 8,
            ..ServiceConfig::default()
        },
    );
    let rays = down_rays(8, &service);
    // Admitted with a deadline a few ticks out...
    let deadline = service.now_us() + 4;
    service
        .submit_with_deadline(0, RequestClass::Primary, rays, Some(deadline))
        .unwrap();
    // ...then the clock ticks past it while the request sits queued.
    while service.now_us() <= deadline {}
    let round = service.run_round();
    assert_eq!(round.expired, 1);
    assert_eq!(round.requests, 0);
    assert_eq!(round.rays, 0, "expired requests are never traced");
    let stats = service.stats();
    assert_eq!(stats.expired_requests, 1);
    assert_eq!(stats.classes[RequestClass::Primary.index()].expired, 1);
    assert_eq!(
        stats.faults_by_kind[FaultKind::DeadlineExceeded.index()],
        1,
        "expiry must be attributed as a typed DeadlineExceeded fault"
    );
    assert_eq!(stats.availability(), 0.0);
}

#[test]
fn late_completion_counts_as_deadline_miss_not_expiry() {
    let service = logical_service(
        1,
        ServiceConfig {
            chunk_rays: 8,
            ..ServiceConfig::default()
        },
    );
    let rays = down_rays(8, &service);
    // Three ticks of budget: alive at the dispatch expiry check (the
    // round's span open and expiry read burn two), but the completion
    // read lands past it.
    let deadline = service.now_us() + 3;
    service
        .submit_with_deadline(0, RequestClass::Primary, rays, Some(deadline))
        .unwrap();
    let round = service.run_round();
    assert_eq!(round.requests, 1, "the request completes");
    assert_eq!(round.expired, 0);
    let stats = service.stats();
    assert_eq!(stats.completed_requests, 1);
    assert_eq!(stats.deadline_miss_requests, 1, "but it completed late");
    assert_eq!(
        stats.classes[RequestClass::Primary.index()].deadline_miss,
        1
    );
    assert_eq!(stats.availability(), 0.0);
}

#[test]
fn identical_logical_runs_produce_identical_stats() {
    // The determinism claim behind RIP_TRACE_CLOCK=logical: the same
    // submission/round sequence yields bit-identical accounting,
    // latencies included.
    let run = || {
        let service = logical_service(
            2,
            ServiceConfig {
                chunk_rays: 8,
                ..ServiceConfig::default()
            },
        );
        let rays = down_rays(24, &service);
        for tenant in 0..2 {
            service
                .submit(tenant, RequestClass::Primary, rays.clone())
                .unwrap();
            let deadline = service.now_us() + 50;
            service
                .submit_with_deadline(tenant, RequestClass::Shadow, rays.clone(), Some(deadline))
                .unwrap();
        }
        service.run_round();
        service.run_round();
        service.stats()
    };
    let a = run();
    let b = run();
    assert_eq!(a.completed_requests, b.completed_requests);
    assert_eq!(a.deadline_miss_requests, b.deadline_miss_requests);
    assert_eq!(a.faults_by_kind, b.faults_by_kind);
    for class in RequestClass::ALL {
        let (ca, cb) = (&a.classes[class.index()], &b.classes[class.index()]);
        assert_eq!(ca.hits, cb.hits, "{}", class.label());
        assert_eq!(ca.latency_us.count(), cb.latency_us.count());
        assert_eq!(ca.latency_us.max(), cb.latency_us.max());
        assert_eq!(ca.latency_us.p50(), cb.latency_us.p50());
        assert_eq!(
            ca.latency_us.mean(),
            cb.latency_us.mean(),
            "logical-clock latencies must be bit-identical ({})",
            class.label()
        );
    }
}

#[test]
fn degraded_modes_return_bit_identical_hits_under_deadlines() {
    // The §4 transparency contract survives the whole ladder: a
    // deadline-carrying workload completes with identical hit counts in
    // Full, NoPredict, and Survival.
    let hits_in = |mode: ServiceMode| {
        let service = logical_service(
            1,
            ServiceConfig {
                chunk_rays: 8,
                ..ServiceConfig::default()
            },
        );
        service.force_mode(mode);
        let rays = down_rays(48, &service);
        let deadline = service.now_us() + 10_000;
        service
            .submit_with_deadline(0, RequestClass::Primary, rays, Some(deadline))
            .unwrap();
        while service.pending() > 0 {
            service.run_round();
        }
        let stats = service.stats();
        assert_eq!(stats.completed_requests, 1, "{mode}");
        assert_eq!(stats.failed_requests, 0, "{mode}");
        stats.classes[RequestClass::Primary.index()].hits
    };
    let full = hits_in(ServiceMode::Full);
    assert_eq!(full, hits_in(ServiceMode::NoPredict));
    assert_eq!(full, hits_in(ServiceMode::Survival));
    assert!(full > 0, "down rays must hit the scene");
}

#[test]
fn chaos_panics_are_contained_and_attributed_under_deadlines() {
    // 100% panic injection with deadlines: every request must reach a
    // typed terminal outcome (failed or expired — never a hang, never a
    // poisoned round), and the taxonomy must account for each one.
    let service = logical_service(
        2,
        ServiceConfig {
            chunk_rays: 8,
            chaos: ChaosConfig {
                panic_rate: 1.0,
                panic_attempts: u32::MAX,
                seed: 17,
                ..ChaosConfig::default()
            },
            ..ServiceConfig::default()
        },
    );
    let rays = down_rays(16, &service);
    for tenant in 0..2 {
        let deadline = service.now_us() + 10_000;
        service
            .submit_with_deadline(tenant, RequestClass::Shadow, rays.clone(), Some(deadline))
            .unwrap();
    }
    let round = service.run_round();
    assert_eq!(round.failed + round.expired, 2);
    assert_eq!(service.pending(), 0);
    let stats = service.stats();
    assert_eq!(stats.finished_requests(), 2);
    assert_eq!(
        stats.faults_by_kind.iter().sum::<u64>(),
        2,
        "every failure carries exactly one typed fault"
    );
    assert!(stats.faults_by_kind[FaultKind::Panic.index()] > 0);
}

#[test]
fn rejections_never_consume_request_ids() {
    // A rejected submission must not burn an id or touch a queue — ids
    // stay dense over admitted requests only (replayable logs depend on
    // it).
    let service = logical_service(
        1,
        ServiceConfig {
            chunk_rays: 8,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    );
    let rays = down_rays(4, &service);
    let first = service
        .submit(0, RequestClass::Primary, rays.clone())
        .unwrap();
    assert_eq!(first, 0);
    // Queue of 1 is full: backpressure.
    let err = service
        .submit(0, RequestClass::Primary, rays.clone())
        .unwrap_err();
    assert!(matches!(err, Rejection::Backpressure(_)));
    // A deadline in the past: unmeetable.
    let err = service
        .submit_with_deadline(0, RequestClass::Shadow, rays.clone(), Some(0))
        .unwrap_err();
    assert!(matches!(err, Rejection::DeadlineUnmeetable { .. }));
    service.run_round();
    let second = service.submit(0, RequestClass::Primary, rays).unwrap();
    assert_eq!(second, 1, "rejections must not consume ids");
    let stats = service.stats();
    assert_eq!(stats.admitted_requests, 2);
    assert_eq!(stats.shed_requests, 1);
    assert_eq!(stats.rejected_unmeetable, 1);
}
