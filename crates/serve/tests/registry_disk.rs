//! Registry reloads over the on-disk RIPA v2 artifact store.
//!
//! A service reload should not pay a geometry rebuild when a valid
//! artifact exists: it swaps the lease's `Arc` onto a case decoded in
//! place over the mapped artifact bytes. These tests drive
//! [`SceneRegistry`] over a disk-backed [`CaseCache`] and pin down
//! three properties: reloads are served from disk, the served case is
//! byte-identical to the originally built one, and leases held across
//! a reload keep their geometry alive (the mapping is reference-counted
//! through the case, not through the registry).

use rip_exec::{CaseCache, CaseKey};
use rip_scene::{SceneId, SceneScale};
use rip_serve::SceneRegistry;
use std::path::PathBuf;
use std::sync::Arc;

fn key() -> CaseKey {
    CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 18)
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rip-serve-registry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Canonical byte form of a case, for cross-epoch equality checks.
fn digest(case: &rip_exec::Case) -> (Vec<u8>, Vec<u8>) {
    (
        rip_scene::serial::encode(&case.scene),
        rip_bvh::serial::encode(&case.bvh),
    )
}

#[test]
fn reload_serves_mapped_disk_artifacts_bit_identically() {
    let dir = temp_store("reload");

    // First process: build from source, persisting v2 artifacts.
    let built_digest = {
        let cache = Arc::new(CaseCache::with_disk_dir(Some(dir.clone())));
        let registry = SceneRegistry::new(Arc::clone(&cache));
        let lease = registry.get(key());
        assert_eq!(cache.stats().builds, 1);
        digest(&lease.case)
    };

    // Second process: the registry's first lease comes off disk, and a
    // reload swaps the Arc by re-mapping the artifact — no rebuild.
    let cache = Arc::new(CaseCache::with_disk_dir(Some(dir.clone())));
    let registry = SceneRegistry::new(Arc::clone(&cache));
    let old = registry.get(key());
    assert_eq!(cache.stats().disk_hits, 1, "first get loads from disk");
    assert_eq!(cache.stats().builds, 0);
    assert!(
        old.case.scene.mesh.is_shared(),
        "a disk-loaded mesh must borrow the mapped artifact bytes"
    );

    let fresh = registry
        .try_reload(key())
        .expect("reload over a valid store");
    assert_eq!(cache.stats().disk_hits, 2, "reload re-maps the artifact");
    assert_eq!(cache.stats().builds, 0, "reload must not rebuild geometry");
    assert!(fresh.epoch > old.epoch);
    assert!(
        !Arc::ptr_eq(&old.case, &fresh.case),
        "reload publishes a distinct case"
    );

    // Both epochs — and the original build — are byte-identical.
    assert_eq!(digest(&old.case), built_digest);
    assert_eq!(digest(&fresh.case), built_digest);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn old_lease_outlives_reload_and_registry() {
    let dir = temp_store("lease-lifetime");
    {
        let cache = Arc::new(CaseCache::with_disk_dir(Some(dir.clone())));
        SceneRegistry::new(cache).get(key());
    }

    let cache = Arc::new(CaseCache::with_disk_dir(Some(dir.clone())));
    let registry = SceneRegistry::new(cache);
    let old = registry.get(key());
    let expected = digest(&old.case);
    let fresh = registry.try_reload(key()).expect("reload");
    drop(fresh);
    drop(registry);

    // The old lease still traces against consistent geometry: the
    // mapped bytes are kept alive by the case itself.
    assert!(old.case.scene.mesh.triangle_count() > 0);
    assert_eq!(digest(&old.case), expected);

    let _ = std::fs::remove_dir_all(&dir);
}
