//! The reload circuit breaker, driven through `RIP_FAULT_INJECT`.
//!
//! This binary holds exactly one test because it mutates the
//! process-wide `RIP_FAULT_INJECT` environment variable; cargo runs
//! test *binaries* in separate processes, so the mutation cannot race
//! another test's injection plan.

use rip_exec::{CaseCache, CaseKey, FaultKind};
use rip_scene::{SceneId, SceneScale};
use rip_serve::{BreakerConfig, ReloadError, SceneRegistry};
use std::sync::Arc;

#[test]
fn failed_reloads_keep_the_old_epoch_and_trip_the_breaker() {
    let registry = SceneRegistry::with_breaker(
        Arc::new(CaseCache::in_memory_only()),
        BreakerConfig {
            failure_threshold: 2,
            probe_after: 2,
        },
    );
    let key = CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16);
    let before = registry.get(key);
    assert_eq!(before.epoch, 0);

    // Every rebuild attempt panics from here on.
    std::env::set_var("RIP_FAULT_INJECT", "panic:serve_reload");

    // Failure 1: typed fault, old case still served, epoch unchanged.
    match registry.try_reload(key) {
        Err(ReloadError::BuildFailed(fault)) => assert_eq!(fault.kind, FaultKind::Panic),
        other => panic!("expected BuildFailed, got {other:?}"),
    }
    let lease = registry.get(key);
    assert!(
        Arc::ptr_eq(&lease.case, &before.case),
        "a failed rebuild must keep serving the last good case"
    );
    assert_eq!(lease.epoch, 0);
    assert!(!registry.breaker_open(), "one failure is below threshold");

    // Failure 2 opens the breaker.
    assert!(matches!(
        registry.try_reload(key),
        Err(ReloadError::BuildFailed(_))
    ));
    assert!(registry.breaker_open());

    // While open: refusals without a rebuild attempt (the injected
    // panic would fire if the build ran).
    match registry.try_reload(key) {
        Err(ReloadError::BreakerOpen {
            failures,
            until_probe,
        }) => {
            assert_eq!(failures, 2);
            assert_eq!(until_probe, 1);
        }
        other => panic!("expected BreakerOpen, got {other:?}"),
    }
    assert!(matches!(
        registry.try_reload(key),
        Err(ReloadError::BreakerOpen { until_probe: 0, .. })
    ));

    // The next call is the half-open probe — still failing, so the
    // breaker stays open.
    assert!(matches!(
        registry.try_reload(key),
        Err(ReloadError::BuildFailed(_))
    ));
    assert!(registry.breaker_open());

    // Burn this cycle's refusals, then fix the build; the next probe
    // closes the breaker and finally publishes a new epoch.
    for _ in 0..2 {
        assert!(matches!(
            registry.try_reload(key),
            Err(ReloadError::BreakerOpen { .. })
        ));
    }
    std::env::remove_var("RIP_FAULT_INJECT");
    let fresh = registry.try_reload(key).expect("probe should succeed");
    assert_eq!(fresh.epoch, 1);
    assert!(!registry.breaker_open());
    assert!(
        !Arc::ptr_eq(&fresh.case, &before.case),
        "the successful reload must publish a rebuilt case"
    );

    let (ok, failed, refused) = registry.reload_counts();
    assert_eq!(ok, 1);
    assert_eq!(failed, 3);
    assert_eq!(refused, 4);

    // And with the breaker closed, reloads behave normally again.
    assert_eq!(registry.try_reload(key).unwrap().epoch, 2);
}
