//! Concurrency stress: reloads racing in-flight leases, and service
//! stats under concurrent submission.

use rip_bvh::{RayBatch, StacklessKernel, TraversalKernel};
use rip_exec::{CaseCache, CaseKey};
use rip_math::{Ray, Vec3};
use rip_scene::{SceneId, SceneScale};
use rip_serve::{RayService, RequestClass, SceneRegistry, ServiceConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn key() -> CaseKey {
    CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16)
}

fn probe_rays(case: &rip_exec::Case, n: usize) -> RayBatch {
    let bounds = case.bvh.bounds();
    let center = bounds.center();
    (0..n)
        .map(|i| {
            let t = i as f32 / n.max(1) as f32;
            let o = Vec3::new(
                bounds.min.x + t * (bounds.max.x - bounds.min.x),
                bounds.max.y + 1.0,
                center.z,
            );
            Ray::new(o, -Vec3::Y)
        })
        .collect()
}

/// A reload loop races tracer loops. Each tracer takes a fresh lease
/// per request and traces against it end to end: the lease's case must
/// stay internally consistent (the epoch swap can never mutate geometry
/// under a half-traced batch), and because rebuilds of the same key are
/// deterministic, every epoch must produce the identical hit count.
#[test]
fn reloads_race_inflight_leases_without_torn_results() {
    const RELOADS: u64 = 40;
    let registry = Arc::new(SceneRegistry::new(Arc::new(CaseCache::in_memory_only())));
    let baseline_lease = registry.get(key());
    let rays = probe_rays(&baseline_lease.case, 64);
    let baseline: Vec<bool> = StacklessKernel::new(&baseline_lease.case.bvh)
        .trace_batch(&rays, RequestClass::Primary.kind())
        .iter()
        .map(|r| r.hit.is_some())
        .collect();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _tracer in 0..3 {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let rays = rays.clone();
            let baseline = baseline.clone();
            scope.spawn(move || {
                let mut seen_epochs = 0u64;
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let lease = registry.get(key());
                    // Epochs only move forward under concurrent reloads.
                    assert!(lease.epoch >= last_epoch, "epoch went backwards");
                    if lease.epoch != last_epoch {
                        seen_epochs += 1;
                        last_epoch = lease.epoch;
                    }
                    let hits: Vec<bool> = StacklessKernel::new(&lease.case.bvh)
                        .trace_batch(&rays, RequestClass::Primary.kind())
                        .iter()
                        .map(|r| r.hit.is_some())
                        .collect();
                    assert_eq!(
                        hits, baseline,
                        "epoch {} produced different hits — torn geometry",
                        lease.epoch
                    );
                }
                seen_epochs
            });
        }
        for _ in 0..RELOADS {
            registry.try_reload(key()).expect("healthy reloads succeed");
        }
        stop.store(true, Ordering::Release);
    });

    assert_eq!(registry.epoch(), RELOADS);
    assert_eq!(registry.get(key()).epoch, RELOADS);
    let (ok, failed, refused) = registry.reload_counts();
    assert_eq!((ok, failed, refused), (RELOADS, 0, 0));
}

/// Hammers one service from concurrent submitters while a dispatcher
/// drains it, then checks that every offered request reached exactly
/// one typed outcome — no lost updates anywhere in `ServiceStats`.
#[test]
fn concurrent_submission_loses_no_stats_updates() {
    const SUBMITTERS: usize = 4;
    const PER_SUBMITTER: u64 = 60;
    let registry = SceneRegistry::new(Arc::new(CaseCache::in_memory_only()));
    let lease = registry.get(key());
    let service = RayService::new(
        lease,
        SUBMITTERS,
        ServiceConfig {
            chunk_rays: 32,
            queue_capacity: 4, // small on purpose: force real shedding
            ..ServiceConfig::default()
        },
    );
    let rays = probe_rays(service.case(), 16);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for tenant in 0..SUBMITTERS {
            let service = &service;
            let rays = rays.clone();
            scope.spawn(move || {
                for i in 0..PER_SUBMITTER {
                    let class = RequestClass::ALL[(i as usize) % RequestClass::ALL.len()];
                    let _ = service.submit(tenant, class, rays.clone());
                }
            });
        }
        scope.spawn(|| {
            while !done.load(Ordering::Acquire) || service.pending() > 0 {
                service.run_round();
            }
        });
        // scoped spawn order: submitters finish, then flag the drain.
        // (The scope itself joins the dispatcher.)
        while service.stats().admitted_requests + service.stats().shed_requests
            < SUBMITTERS as u64 * PER_SUBMITTER
        {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
    });

    let offered = SUBMITTERS as u64 * PER_SUBMITTER;
    let stats = service.stats();
    assert_eq!(service.pending(), 0, "drain must finish empty");
    assert_eq!(
        stats.admitted_requests
            + stats.shed_requests
            + stats.rate_limited
            + stats.rejected_unmeetable,
        offered,
        "every submission was admitted or rejected exactly once"
    );
    assert_eq!(
        stats.completed_requests + stats.expired_requests + stats.failed_requests,
        stats.admitted_requests,
        "every admitted request reached exactly one terminal outcome"
    );
    assert_eq!(stats.failed_requests, 0, "no injection, no failures");
    let class_requests: u64 = stats.classes.iter().map(|c| c.requests).sum();
    let class_shed: u64 = stats.classes.iter().map(|c| c.shed).sum();
    assert_eq!(class_requests, stats.completed_requests);
    assert_eq!(class_shed, stats.shed_requests);
    let class_rays: u64 = stats.classes.iter().map(|c| c.rays).sum();
    assert_eq!(class_rays, stats.completed_rays);
    assert_eq!(
        stats.completed_rays,
        stats.completed_requests * rays.len() as u64
    );
}
