//! Golden-snapshot maintenance tool.
//!
//! `--check` (default) re-runs all 23 experiments at the fixed snapshot
//! scale and diffs each report against `tests/snapshots/`; `--update`
//! rewrites the committed files instead. Exit status is non-zero when a
//! check fails, so CI can gate on it.

use rip_bench::experiments;
use rip_testkit::snapshot;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let update = args
        .iter()
        .any(|a| a == "--update" || a == "--update-snapshots");
    if args
        .iter()
        .any(|a| !matches!(a.as_str(), "--update" | "--update-snapshots" | "--check"))
    {
        eprintln!("usage: snapshots [--check | --update]");
        std::process::exit(2);
    }

    let ctx = snapshot::snapshot_context();
    let reports = experiments::run_all(&ctx);
    let mut failures = 0usize;
    for ((name, _), report) in experiments::ALL.iter().zip(reports) {
        let text = report.to_string();
        if update {
            let path = snapshot::update(name, &text).expect("snapshot write failed");
            println!("updated {}", path.display());
        } else {
            match snapshot::verify(name, &text) {
                Ok(()) => println!("ok      {name}"),
                Err(e) => {
                    failures += 1;
                    println!("FAILED  {name}\n{e}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} snapshot(s) diverged; regenerate intentionally with \
             `cargo run --release -p rip-testkit --bin snapshots -- --update`"
        );
        std::process::exit(1);
    }
}
