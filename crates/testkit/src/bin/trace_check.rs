//! CI entry point for the trace-schema contract.
//!
//! Usage: `trace_check FILE...` — validates each JSONL trace file with
//! [`rip_testkit::obs::validate_trace`] (every line parses as a JSON
//! object carrying `name`/`ph`/`ts`/`pid`) and prints the event count.
//! Exits 1 on the first malformed file, 2 on usage/IO errors.

use rip_testkit::obs::validate_trace;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_check FILE...");
        std::process::exit(2);
    }
    for path in &paths {
        let jsonl = match std::fs::read_to_string(path) {
            Ok(jsonl) => jsonl,
            Err(e) => {
                eprintln!("trace_check: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match validate_trace(&jsonl) {
            Ok(count) => println!("ok\t{path}\t{count} events"),
            Err(e) => {
                eprintln!("trace_check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
