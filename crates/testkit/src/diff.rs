//! Differential oracles: every traversal kernel must tell the same story.
//!
//! Four implementations answer "what does this ray hit": the while-while
//! stack traversal, the stackless restart-trail traversal, the 4-wide BVH,
//! and a brute-force loop over every triangle. For closest-hit queries
//! they must agree **exactly** — same `t` bits, same triangle index —
//! because the Möller–Trumbore `t` of a given (ray, triangle) pair is
//! independent of traversal order and the shared tie-break rule
//! ([`rip_bvh::Hit::closer_than`]) picks the same winner among equal-`t`
//! candidates. Any-hit queries are compared on hit/miss (kernels
//! legitimately stop at different first intersections).
//!
//! On top of the scalar agreement checks, the batch oracles pin the
//! ray-stream layer: every [`TraversalKernel`]'s batch entry points must be
//! **bit-exact** — hits *and* statistics — with its own per-ray calls
//! ([`assert_batch_matches_scalar`]), and tracing a Morton-sorted stream
//! then un-sorting the results must reproduce the unsorted run bit for bit
//! ([`assert_batch_morton_exact`]).

use rip_bvh::{
    stackless, Bvh, RayBatch, StacklessKernel, SteppableKernel, TraversalKernel, TraversalKind,
    WhileWhileKernel, WideBvh, WideKernel,
};
use rip_math::{Ray, Triangle};

/// A scene prepared for differential checking: one binary BVH plus the
/// wide BVH collapsed from it.
pub struct DiffOracle {
    /// The binary tree (drives the stack, stackless and brute-force paths).
    pub bvh: Bvh,
    /// The 4-wide tree sharing the binary tree's triangle storage.
    pub wide: WideBvh,
}

/// The per-kernel closest-hit answers for one ray, for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClosestAnswers {
    /// (triangle index, t) from the while-while stack traversal.
    pub stack: Option<(u32, f32)>,
    /// … from the stackless restart-trail traversal.
    pub stackless: Option<(u32, f32)>,
    /// … from the 4-wide traversal.
    pub wide: Option<(u32, f32)>,
    /// … from the brute-force reference.
    pub brute: Option<(u32, f32)>,
}

impl DiffOracle {
    /// Builds both acceleration structures over `tris`.
    pub fn new(tris: &[Triangle]) -> Self {
        let bvh = Bvh::build(tris);
        let wide = WideBvh::from_binary(&bvh);
        DiffOracle { bvh, wide }
    }

    /// Collects every kernel's closest-hit answer for `ray`.
    pub fn closest_answers(&self, ray: &Ray) -> ClosestAnswers {
        let kind = TraversalKind::ClosestHit;
        ClosestAnswers {
            stack: self
                .bvh
                .intersect(ray, kind)
                .hit
                .map(|h| (h.tri_index, h.t)),
            stackless: stackless::traverse(&self.bvh, ray, kind)
                .hit
                .map(|h| (h.tri_index, h.t)),
            wide: self
                .wide
                .intersect(&self.bvh, ray, kind)
                .hit
                .map(|h| (h.tri_index, h.t)),
            brute: self.bvh.intersect_brute_force(ray, kind),
        }
    }

    /// Checks exact four-way closest-hit agreement for `ray`.
    pub fn check_closest(&self, ray: &Ray) -> Result<(), String> {
        let a = self.closest_answers(ray);
        let key = |h: Option<(u32, f32)>| h.map(|(i, t)| (i, t.to_bits()));
        let reference = key(a.brute);
        for (name, answer) in [
            ("stack", key(a.stack)),
            ("stackless", key(a.stackless)),
            ("wide", key(a.wide)),
        ] {
            if answer != reference {
                return Err(format!(
                    "closest-hit divergence for {ray:?}: {name} kernel disagrees \
                     with brute force — {a:?}"
                ));
            }
        }
        Ok(())
    }

    /// Checks four-way any-hit (hit/miss) agreement for `ray`.
    pub fn check_any(&self, ray: &Ray) -> Result<(), String> {
        let kind = TraversalKind::AnyHit;
        let reference = self.bvh.intersect_brute_force(ray, kind).is_some();
        for (name, answer) in [
            ("stack", self.bvh.intersect(ray, kind).hit.is_some()),
            (
                "stackless",
                stackless::traverse(&self.bvh, ray, kind).hit.is_some(),
            ),
            (
                "wide",
                self.wide.intersect(&self.bvh, ray, kind).hit.is_some(),
            ),
        ] {
            if answer != reference {
                return Err(format!(
                    "any-hit divergence for {ray:?}: {name} said {answer}, \
                     brute force said {reference}"
                ));
            }
        }
        Ok(())
    }

    /// Checks both query kinds for `ray`.
    pub fn check_ray(&self, ray: &Ray) -> Result<(), String> {
        self.check_closest(ray)?;
        self.check_any(ray)
    }
}

/// The repo's four traversal kernels as trait objects over one oracle's
/// trees, in a fixed order (while-while, stackless, wide4, steppable).
pub fn kernels<'a>(oracle: &'a DiffOracle) -> Vec<Box<dyn TraversalKernel + 'a>> {
    vec![
        Box::new(WhileWhileKernel::new(&oracle.bvh)),
        Box::new(StacklessKernel::new(&oracle.bvh)),
        Box::new(WideKernel::new(&oracle.wide, &oracle.bvh)),
        Box::new(SteppableKernel::new(&oracle.bvh)),
    ]
}

fn assert_results_bit_exact(
    context: &str,
    got: &rip_bvh::TraversalResult,
    want: &rip_bvh::TraversalResult,
) {
    assert_eq!(
        got.hit.map(|h| (h.tri_index, h.leaf, h.t.to_bits())),
        want.hit.map(|h| (h.tri_index, h.leaf, h.t.to_bits())),
        "{context}: hit differs"
    );
    assert_eq!(got.stats, want.stats, "{context}: statistics differ");
}

/// Asserts that every kernel's batch entry points are bit-exact — hits
/// (same `t` bits, triangle and leaf) *and* traversal statistics — with
/// its own per-ray calls, for both query kinds.
pub fn assert_batch_matches_scalar(label: &str, tris: &[Triangle], rays: &[Ray]) {
    let oracle = DiffOracle::new(tris);
    let batch = RayBatch::from_rays(rays);
    for kernel in &mut kernels(&oracle) {
        for kind in [TraversalKind::ClosestHit, TraversalKind::AnyHit] {
            let batched = kernel.trace_batch(&batch, kind);
            assert_eq!(batched.len(), batch.len(), "one result per ray");
            for (i, b) in batched.iter().enumerate() {
                let scalar = kernel.trace(&rays[i], kind);
                assert_results_bit_exact(
                    &format!(
                        "[{label}] {} ray {i} ({kind:?}) batch-vs-scalar",
                        kernel.name()
                    ),
                    b,
                    &scalar,
                );
            }
        }
    }
}

/// Metamorphic batch oracle: tracing the Morton-sorted stream and
/// un-sorting the per-ray results must reproduce the unsorted batch run
/// bit for bit (hits and statistics), for every kernel and query kind —
/// sorting may only change throughput, never any answer.
pub fn assert_batch_morton_exact(label: &str, tris: &[Triangle], rays: &[Ray]) {
    let oracle = DiffOracle::new(tris);
    let batch = RayBatch::from_rays(rays);
    let (sorted, perm) = batch.morton_sorted(&oracle.bvh.bounds());
    for kernel in &mut kernels(&oracle) {
        for kind in [TraversalKind::ClosestHit, TraversalKind::AnyHit] {
            let base = kernel.trace_batch(&batch, kind);
            let unsorted = perm.unsort(&kernel.trace_batch(&sorted, kind));
            for (i, (b, u)) in base.iter().zip(&unsorted).enumerate() {
                assert_results_bit_exact(
                    &format!(
                        "[{label}] {} ray {i} ({kind:?}) morton-roundtrip",
                        kernel.name()
                    ),
                    u,
                    b,
                );
            }
        }
    }
}

/// Builds an oracle over `tris` and asserts four-way agreement on every
/// ray, panicking with full context on the first divergence.
pub fn assert_kernels_agree(label: &str, tris: &[Triangle], rays: &[Ray]) {
    let oracle = DiffOracle::new(tris);
    for (i, ray) in rays.iter().enumerate() {
        if let Err(e) = oracle.check_ray(ray) {
            panic!("[{label}] ray {i}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_math::Vec3;

    #[test]
    fn oracle_smoke_on_a_single_triangle() {
        let oracle = DiffOracle::new(&[Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)]);
        let hit = Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z);
        let miss = Ray::new(Vec3::new(5.0, 5.0, -1.0), Vec3::Z);
        oracle.check_ray(&hit).unwrap();
        oracle.check_ray(&miss).unwrap();
        let a = oracle.closest_answers(&hit);
        assert_eq!(a.stack, a.brute);
        assert!(a.brute.is_some());
    }
}
