//! Fault-injection helpers: break things on purpose, deterministically.
//!
//! Two families of hooks, matching the two ways a sweep can be hurt:
//!
//! 1. **Work-unit faults** — panicking, slow (watchdog-tripping), flaky
//!    (retry-then-succeed), and process-killing units, injected into a
//!    real `run_all` sweep through the `RIP_FAULT_INJECT` environment
//!    variable (parsed by [`rip_exec::InjectionPlan`]). [`spec`] and the
//!    directive builders compose well-formed spec strings so tests never
//!    hand-roll the grammar.
//! 2. **Artifact corruption** — byte-level damage to on-disk scene/BVH
//!    artifacts: single [`bit_flip`]s, [`header_bomb`]s (a valid header
//!    promising absurd element counts, the classic allocator bomb), and
//!    [`truncate`]d files. The cache must quarantine and rebuild, never
//!    panic, never OOM, never serve garbage.
//!
//! Everything here is deterministic: no RNG, no clocks — a corrupted
//! byte offset is part of the test, not of fate.

use std::path::{Path, PathBuf};

/// Composes directives into a `RIP_FAULT_INJECT` spec string.
///
/// ```
/// use rip_testkit::faultinject;
/// let spec = faultinject::spec(&[
///     faultinject::panic_unit("fig12_speedup"),
///     faultinject::flaky_unit("sec64_gi", 2),
/// ]);
/// assert_eq!(spec, "panic:fig12_speedup;flaky:sec64_gi=2");
/// ```
pub fn spec(directives: &[String]) -> String {
    directives.join(";")
}

/// Directive: panic when `unit` starts.
pub fn panic_unit(unit: &str) -> String {
    format!("panic:{unit}")
}

/// Directive: sleep `ms` milliseconds before running `unit` (use with a
/// smaller `RIP_UNIT_TIMEOUT` to trip the watchdog).
pub fn slow_unit(unit: &str, ms: u64) -> String {
    format!("slow:{unit}={ms}")
}

/// Directive: fail `unit` with a retryable fault on its first `attempts`
/// attempts, then succeed.
pub fn flaky_unit(unit: &str, attempts: u32) -> String {
    format!("flaky:{unit}={attempts}")
}

/// Directive: fail `unit` with an unrecoverable `CacheCorrupt` fault.
pub fn corrupt_unit(unit: &str) -> String {
    format!("corrupt:{unit}")
}

/// Directive: hard-exit the process (simulated `kill -9`) when `unit`
/// starts.
pub fn kill_at_unit(unit: &str) -> String {
    format!("kill:{unit}")
}

/// Flips one bit at `offset` (clamped to the file) in `path`.
pub fn bit_flip(path: &Path, offset: usize) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    let at = offset.min(bytes.len() - 1);
    bytes[at] ^= 0x20;
    std::fs::write(path, bytes)
}

/// Overwrites the first count field after the 8-byte magic+version
/// header with `u32::MAX`: a syntactically valid header promising an
/// absurd payload. Decoders must reject it via capacity guards instead
/// of attempting a ~100 GiB allocation.
pub fn header_bomb(path: &Path) -> std::io::Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.len() < 12 {
        return Ok(());
    }
    bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    std::fs::write(path, bytes)
}

/// Truncates the file to `keep` bytes (no-op when already shorter).
pub fn truncate(path: &Path, keep: usize) -> std::io::Result<()> {
    let bytes = std::fs::read(path)?;
    if bytes.len() > keep {
        std::fs::write(path, &bytes[..keep])?;
    }
    Ok(())
}

/// The artifact files with extension `ext` (e.g. `"bvh"`, `"scene"`)
/// under cache dir `dir`, sorted for determinism.
pub fn artifacts_with_ext(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|e| e == ext))
        .collect();
    paths.sort();
    paths
}

/// Bit-flips the middle byte of every `ext` artifact under `dir`;
/// returns how many files were damaged.
pub fn corrupt_artifacts(dir: &Path, ext: &str) -> std::io::Result<usize> {
    let paths = artifacts_with_ext(dir, ext);
    for path in &paths {
        let len = std::fs::metadata(path)?.len() as usize;
        bit_flip(path, len / 2)?;
    }
    Ok(paths.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rip_exec::{CaseCache, CaseKey, FaultKind, InjectionPlan};
    use rip_scene::{SceneId, SceneScale};

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rip-faultinject-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key() -> CaseKey {
        CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 24)
    }

    #[test]
    fn spec_builders_parse_back_to_directives() {
        let spec = spec(&[
            panic_unit("a"),
            slow_unit("b", 250),
            flaky_unit("c", 3),
            kill_at_unit("d"),
        ]);
        let plan = InjectionPlan::parse(&spec);
        for label in ["a", "b", "c", "d"] {
            assert_eq!(
                plan.for_label(label).count(),
                1,
                "missing directive {label}"
            );
        }
    }

    #[test]
    fn header_bomb_is_rejected_not_allocated() {
        let dir = temp_store("bomb");
        {
            let cache = CaseCache::with_disk_dir(Some(dir.clone()));
            cache.get_or_build(key());
        }
        for ext in ["scene", "bvh"] {
            for path in artifacts_with_ext(&dir, ext) {
                header_bomb(&path).unwrap();
            }
        }
        // Decoding must fail fast via capacity guards — no 16 GiB Vec —
        // and the cache must quarantine the bombs and rebuild.
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        let case = cache.get_or_build(key());
        assert_eq!(cache.stats().builds, 1, "bombed artifacts must rebuild");
        assert!(cache.stats().quarantines >= 1, "bombs must be quarantined");
        case.bvh.validate().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_bvh_quarantines_and_rebuilds() {
        let dir = temp_store("flip");
        {
            let cache = CaseCache::with_disk_dir(Some(dir.clone()));
            cache.get_or_build(key());
        }
        assert_eq!(corrupt_artifacts(&dir, "bvh").unwrap(), 1);
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        let case = cache.get_or_build(key());
        assert_eq!(cache.stats().builds, 1);
        assert_eq!(cache.stats().quarantines, 1);
        case.bvh.validate().unwrap();
        assert_eq!(
            artifacts_with_ext(&dir, "quarantine").len(),
            1,
            "the flipped artifact must be preserved as *.quarantine"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_flaky_unit_reports_retryable_fault() {
        let plan = InjectionPlan::parse(&flaky_unit("unit", 1));
        let fault = plan.apply("unit", 1).unwrap_err();
        assert_eq!(fault.kind, FaultKind::Retryable);
        assert!(plan.apply("unit", 2).is_ok());
    }
}
