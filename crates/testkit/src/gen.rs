//! Seeded random generators for scenes, cameras and ray batches.
//!
//! Everything here is a pure function of its seed, so a failing case can be
//! replayed by name. The recipes deliberately cover the geometry the
//! kernels find hardest: degenerate (zero-area) triangles, axis-aligned
//! quads whose AABBs are flat in one dimension, and shared edges/vertices
//! that produce exactly-equal hit distances.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_math::{sampling, Aabb, Ray, Triangle, Vec3};
use rip_scene::Camera;

/// A deterministic generator for `seed`.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Families of generated test geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SceneRecipe {
    /// Independent random triangles — no structure at all.
    Soup,
    /// An axis-aligned floor grid of shared-vertex quads; every leaf AABB
    /// is flat (zero extent in Y).
    Grid,
    /// Parallel axis-aligned walls at several depths: flat AABBs plus many
    /// exactly-equal hit distances along shared edges.
    Walls,
    /// Tight clusters separated by empty space — deep, skewed trees.
    Clustered,
    /// Soup mixed with zero-area (collinear and repeated-vertex) triangles
    /// and extreme slivers.
    Degenerate,
}

/// Every recipe, for exhaustive sweeps.
pub const ALL_RECIPES: [SceneRecipe; 5] = [
    SceneRecipe::Soup,
    SceneRecipe::Grid,
    SceneRecipe::Walls,
    SceneRecipe::Clustered,
    SceneRecipe::Degenerate,
];

impl SceneRecipe {
    /// Stable name for test diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SceneRecipe::Soup => "soup",
            SceneRecipe::Grid => "grid",
            SceneRecipe::Walls => "walls",
            SceneRecipe::Clustered => "clustered",
            SceneRecipe::Degenerate => "degenerate",
        }
    }

    /// Generates roughly `n` triangles from this recipe.
    pub fn triangles(self, n: usize, seed: u64) -> Vec<Triangle> {
        let mut r = rng(seed ^ (self as u64) << 32);
        match self {
            SceneRecipe::Soup => soup(&mut r, n),
            SceneRecipe::Grid => grid(n),
            SceneRecipe::Walls => walls(n),
            SceneRecipe::Clustered => clustered(&mut r, n),
            SceneRecipe::Degenerate => degenerate(&mut r, n),
        }
    }
}

fn soup(r: &mut SmallRng, n: usize) -> Vec<Triangle> {
    (0..n)
        .map(|_| {
            let base = rand_vec3(r, -5.0..5.0);
            let e1 = rand_vec3(r, -1.0..1.0);
            let e2 = rand_vec3(r, -1.0..1.0);
            Triangle::new(base, base + e1, base + e2)
        })
        .collect()
}

/// A `side × side` floor of quads in the y = 0 plane with shared vertices.
fn grid(n: usize) -> Vec<Triangle> {
    let side = ((n / 2).max(1) as f32).sqrt().ceil() as i32;
    let mut tris = Vec::new();
    for i in 0..side {
        for j in 0..side {
            let o = Vec3::new(i as f32, 0.0, j as f32);
            tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Z));
            tris.push(Triangle::new(
                o + Vec3::X,
                o + Vec3::X + Vec3::Z,
                o + Vec3::Z,
            ));
        }
    }
    tris
}

/// Parallel walls at z = 1, 2, 3 … sharing edges within each wall.
fn walls(n: usize) -> Vec<Triangle> {
    let per_wall = (n / 3).max(2);
    let side = ((per_wall / 2).max(1) as f32).sqrt().ceil() as i32;
    let mut tris = Vec::new();
    for z in 1..=3 {
        for i in 0..side {
            for j in 0..side {
                let o = Vec3::new(i as f32, j as f32, z as f32);
                tris.push(Triangle::new(o, o + Vec3::X, o + Vec3::Y));
                tris.push(Triangle::new(
                    o + Vec3::X,
                    o + Vec3::X + Vec3::Y,
                    o + Vec3::Y,
                ));
            }
        }
    }
    tris
}

fn clustered(r: &mut SmallRng, n: usize) -> Vec<Triangle> {
    let clusters = 5usize;
    let mut tris = Vec::new();
    for _ in 0..clusters {
        let center = rand_vec3(r, -20.0..20.0);
        for _ in 0..n / clusters {
            let base = center + rand_vec3(r, -0.5..0.5);
            let e1 = rand_vec3(r, -0.2..0.2);
            let e2 = rand_vec3(r, -0.2..0.2);
            tris.push(Triangle::new(base, base + e1, base + e2));
        }
    }
    tris
}

fn degenerate(r: &mut SmallRng, n: usize) -> Vec<Triangle> {
    let mut tris = soup(r, n.saturating_sub(n / 4));
    for k in 0..n / 4 {
        let base = rand_vec3(r, -5.0..5.0);
        let e = rand_vec3(r, -1.0..1.0);
        tris.push(match k % 3 {
            // Collinear: zero area along a random segment.
            0 => Triangle::new(base, base + e, base + e * 2.0),
            // Repeated vertex.
            1 => Triangle::new(base, base, base + e),
            // Extreme sliver: one edge 10_000× shorter than the other.
            _ => Triangle::new(base, base + e, base + e * 1.0001 + Vec3::X * 1e-4),
        });
    }
    tris
}

/// A mixed batch of `n` rays probing `bounds`: random interior rays,
/// finite segments, axis-aligned grazing rays (which slide along flat
/// AABBs), and outside-in rays toward the center.
pub fn ray_batch(bounds: &Aabb, n: usize, seed: u64) -> Vec<Ray> {
    let mut r = rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let pad = bounds.diagonal_length().max(1.0);
    let lo = bounds.min - Vec3::splat(pad * 0.25);
    let hi = bounds.max + Vec3::splat(pad * 0.25);
    let inside = |r: &mut SmallRng| {
        Vec3::new(
            r.gen_range(lo.x..hi.x.max(lo.x + 1e-3)),
            r.gen_range(lo.y..hi.y.max(lo.y + 1e-3)),
            r.gen_range(lo.z..hi.z.max(lo.z + 1e-3)),
        )
    };
    (0..n)
        .map(|i| {
            let o = inside(&mut r);
            match i % 4 {
                0 => Ray::new(o, sampling::uniform_sphere(r.gen(), r.gen())),
                1 => Ray::segment(o, sampling::uniform_sphere(r.gen(), r.gen()), pad),
                2 => {
                    // Axis-aligned: grazes flat geometry edge-on.
                    let axis = [Vec3::X, Vec3::Y, Vec3::Z][i / 4 % 3];
                    let sign = if r.gen::<f32>() < 0.5 { 1.0 } else { -1.0 };
                    Ray::new(o, axis * sign)
                }
                _ => {
                    let outside =
                        bounds.center() + sampling::uniform_sphere(r.gen(), r.gen()) * pad;
                    Ray::new(outside, (inside(&mut r) - outside).normalized())
                }
            }
        })
        .collect()
}

/// Rays aimed at interior points of non-degenerate triangles — guaranteed
/// (robust) hits, useful where a property needs a tolerance-stable target.
pub fn hitting_rays(tris: &[Triangle], n: usize, seed: u64) -> Vec<Ray> {
    let mut r = rng(seed ^ 0xA5A5_5A5A);
    let solid: Vec<&Triangle> = tris.iter().filter(|t| t.area() > 1e-3).collect();
    assert!(!solid.is_empty(), "recipe produced no usable triangles");
    (0..n)
        .map(|_| {
            // Rejection-sample until the constructed ray demonstrably hits
            // its target triangle, so callers can rely on a robust hit.
            loop {
                let tri = solid[r.gen_range(0..solid.len())];
                // Interior barycentric point with a healthy edge margin.
                let (u, v) = (r.gen_range(0.15..0.55), r.gen_range(0.15..0.35));
                let target = tri.a * (1.0 - u - v) + tri.b * u + tri.c * v;
                let dir = sampling::uniform_sphere(r.gen(), r.gen());
                let origin = target - dir * r.gen_range(1.0..6.0);
                let ray = Ray::new(origin, dir);
                if tri.intersects(&ray) {
                    return ray;
                }
            }
        })
        .collect()
}

/// Rays aimed *exactly* at triangle vertices and edge midpoints: on meshes
/// with shared vertices these produce several hits at the identical `t`,
/// exercising the tie-break rule.
pub fn edge_rays(tris: &[Triangle], n: usize, seed: u64) -> Vec<Ray> {
    let mut r = rng(seed ^ 0x5A5A_A5A5);
    assert!(!tris.is_empty());
    (0..n)
        .map(|i| {
            let tri = &tris[r.gen_range(0..tris.len())];
            let target = match i % 6 {
                0 => tri.a,
                1 => tri.b,
                2 => tri.c,
                3 => (tri.a + tri.b) * 0.5,
                4 => (tri.b + tri.c) * 0.5,
                _ => (tri.a + tri.c) * 0.5,
            };
            let dir = sampling::uniform_sphere(r.gen(), r.gen());
            Ray::new(target - dir * 3.0, dir)
        })
        .collect()
}

/// A deterministic camera framing `bounds` from a seeded direction.
pub fn camera(bounds: &Aabb, width: u32, height: u32, seed: u64) -> Camera {
    let mut r = rng(seed ^ 0xCAFE);
    let center = bounds.center();
    let dist = bounds.diagonal_length().max(1.0) * 1.5;
    let dir = sampling::uniform_sphere(r.gen(), r.gen());
    let position = center + dir * dist;
    Camera::look_at(position, center, Vec3::Y, 55.0, width, height)
}

fn rand_vec3(r: &mut SmallRng, range: std::ops::Range<f32>) -> Vec3 {
    Vec3::new(
        r.gen_range(range.clone()),
        r.gen_range(range.clone()),
        r.gen_range(range),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_per_seed() {
        for recipe in ALL_RECIPES {
            assert_eq!(recipe.triangles(64, 9), recipe.triangles(64, 9));
        }
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE * 4.0);
        assert_eq!(ray_batch(&b, 32, 3), ray_batch(&b, 32, 3));
        assert_ne!(ray_batch(&b, 32, 3), ray_batch(&b, 32, 4));
    }

    #[test]
    fn degenerate_recipe_contains_zero_area_triangles() {
        let tris = SceneRecipe::Degenerate.triangles(80, 1);
        assert!(tris.iter().any(|t| t.area() == 0.0));
        assert!(tris.iter().any(|t| t.area() > 0.0));
    }

    #[test]
    fn grid_recipe_has_flat_bounds() {
        let tris = SceneRecipe::Grid.triangles(32, 0);
        for t in &tris {
            let d = t.bounds().diagonal();
            assert_eq!(d.y, 0.0, "grid triangles must lie in y = 0");
        }
    }

    #[test]
    fn hitting_rays_actually_hit() {
        for recipe in ALL_RECIPES {
            let tris = recipe.triangles(100, 5);
            let bvh = rip_bvh::Bvh::build(&tris);
            for ray in hitting_rays(&tris, 40, 5) {
                assert!(
                    bvh.intersect(&ray, rip_bvh::TraversalKind::AnyHit)
                        .hit
                        .is_some(),
                    "{}: constructed hitting ray missed",
                    recipe.name()
                );
            }
        }
    }

    #[test]
    fn camera_is_deterministic_and_frames_bounds() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE * 8.0);
        let cam = camera(&b, 32, 32, 7);
        assert_eq!(cam, camera(&b, 32, 32, 7));
        // The center of the viewport looks at the box.
        let ray = cam.ray_through(0.5, 0.5);
        assert!(b.intersect(&ray).is_some(), "central ray must see the box");
    }
}
