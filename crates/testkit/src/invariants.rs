//! Predictor invariants: acceleration must never change the answer.
//!
//! The §3 predictor elides interior traversal when a table lookup verifies,
//! so three things must hold no matter how the table behaves:
//!
//! 1. **Transparency** — predictor-on returns the same hits as
//!    predictor-off, for occlusion (hit/miss) and closest-hit
//!    (exact `t` + triangle index) workloads alike.
//! 2. **Oracle dominance** — the §6.3 limit-study ladder
//!    (Predictor ≤ OL ≤ OT ≤ OU) upper-bounds the real predictor's
//!    verified rate, and oracles never mispredict.
//! 3. **Accounting** — Equation 1's terms balance against the measured
//!    counters of a [`FunctionalSim`] run.

use rip_bvh::{Bvh, TraversalKind};
use rip_core::{
    trace_closest, trace_occlusion, FunctionalReport, FunctionalSim, OracleMode, Predictor,
    PredictorConfig, SimOptions,
};
use rip_math::Ray;

/// Traces every ray twice — with a live predictor and with a plain
/// traversal — and asserts identical occlusion answers.
pub fn assert_occlusion_transparent(bvh: &Bvh, rays: &[Ray], config: PredictorConfig) {
    let mut predictor = Predictor::new(config, bvh.bounds());
    for (i, ray) in rays.iter().enumerate() {
        let with = trace_occlusion(&mut predictor, bvh, ray).hit.is_some();
        let without = bvh.intersect(ray, TraversalKind::AnyHit).hit.is_some();
        assert_eq!(
            with, without,
            "occlusion transparency broken at ray {i}: predictor={with}, plain={without}"
        );
    }
}

/// Same check for closest-hit rays, where the predictor trims the fallback
/// traversal by the probe's hit: the final `(t, tri_index)` must still be
/// bit-for-bit the canonical closest hit.
pub fn assert_closest_transparent(bvh: &Bvh, rays: &[Ray], config: PredictorConfig) {
    let mut predictor = Predictor::new(config, bvh.bounds());
    for (i, ray) in rays.iter().enumerate() {
        let with = trace_closest(&mut predictor, bvh, ray)
            .hit
            .map(|h| (h.tri_index, h.t.to_bits()));
        let without = bvh
            .intersect(ray, TraversalKind::ClosestHit)
            .hit
            .map(|h| (h.tri_index, h.t.to_bits()));
        assert_eq!(with, without, "closest-hit transparency broken at ray {i}");
    }
}

/// Runs the §6.3 ladder — real predictor, OL, OT, OU — over one workload.
pub fn oracle_ladder(bvh: &Bvh, rays: &[Ray], config: PredictorConfig) -> Vec<FunctionalReport> {
    [
        OracleMode::None,
        OracleMode::Lookup,
        OracleMode::UnboundedTraining,
        OracleMode::ImmediateUpdates,
    ]
    .into_iter()
    .map(|oracle| {
        FunctionalSim::new(config.with_oracle(oracle), SimOptions::default()).run(bvh, rays)
    })
    .collect()
}

/// Asserts the ladder's dominance properties:
/// each rung's verified rate upper-bounds (within `eps`) the rung below,
/// and idealized lookups never mispredict.
pub fn assert_oracle_ladder_bounds(ladder: &[FunctionalReport], eps: f64) {
    assert_eq!(ladder.len(), 4, "expected Predictor/OL/OT/OU");
    let names = ["Predictor", "OL", "OT", "OU"];
    for window in 0..3 {
        let lower = ladder[window].prediction.verified_rate();
        let upper = ladder[window + 1].prediction.verified_rate();
        assert!(
            upper + eps >= lower,
            "{} verified rate {:.4} exceeds {} verified rate {:.4}",
            names[window],
            lower,
            names[window + 1],
            upper
        );
    }
    for (report, name) in ladder.iter().zip(names).skip(1) {
        assert_eq!(
            report.prediction.mispredicted(),
            0,
            "{name} is an oracle and must never mispredict"
        );
    }
}

/// Asserts the internal accounting of a functional report: counter
/// containment, rate ranges, the cross-module fetch tally, and the
/// Equation 1 identity `skipped + per_ray = n`.
pub fn assert_report_balances(report: &FunctionalReport) {
    let p = &report.prediction;
    assert!(p.hits <= p.rays, "more hits than rays");
    assert!(p.predicted <= p.rays, "more predictions than rays");
    assert!(p.verified <= p.predicted, "verified rays must be predicted");
    for rate in [p.predicted_rate(), p.verified_rate(), p.hit_rate()] {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
    }

    // The same quantity counted through two independent paths: per-ray
    // prediction stats accumulated by the sim, and the predictor's own
    // running tally.
    assert_eq!(
        p.prediction_eval_fetches,
        report.prediction_eval.node_fetches(),
        "prediction-evaluation fetches disagree between sim and stats"
    );
    assert!(
        report.wasted_prediction_eval.node_fetches() <= report.prediction_eval.node_fetches(),
        "wasted accesses must be a subset of prediction evaluation"
    );
    assert!(
        report.prediction_eval.node_fetches() <= report.with_predictor.node_fetches(),
        "prediction evaluation must be contained in the total paid cost"
    );

    // Equation 1: N = n + p·k·m − v·n ⇒ (n − N) + N = n must hold exactly
    // (up to float association) for the model built from measured rates.
    let eq1 = report.eq1_model();
    let balance = eq1.estimated_nodes_skipped() + eq1.estimated_nodes_per_ray();
    assert!(
        (balance - eq1.n).abs() <= 1e-9 * eq1.n.max(1.0),
        "Equation 1 does not balance: skipped {} + per-ray {} != n {}",
        eq1.estimated_nodes_skipped(),
        eq1.estimated_nodes_per_ray(),
        eq1.n
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn ladder_and_balances_smoke() {
        let tris = gen::SceneRecipe::Walls.triangles(60, 2);
        let bvh = Bvh::build(&tris);
        let rays = gen::hitting_rays(&tris, 120, 2);
        let config = PredictorConfig {
            update_delay: 0,
            ..PredictorConfig::paper_default()
        };
        let ladder = oracle_ladder(&bvh, &rays, config);
        assert_oracle_ladder_bounds(&ladder, 0.02);
        for report in &ladder {
            assert_report_balances(report);
        }
    }
}
