//! The repo's correctness authority.
//!
//! Nothing in a reproduced figure is trustworthy unless the predictor, the
//! three traversal kernels, and the cached/parallel execution paths all
//! agree on what a ray actually hits. This crate turns that requirement
//! into machine-checked layers:
//!
//! 1. **Generators** ([`gen`]) — seeded random scenes, meshes, cameras and
//!    ray batches, deliberately including degenerate triangles, flat
//!    (zero-thickness) AABBs and grazing rays.
//! 2. **Differential oracles** ([`diff`]) — closest-hit/any-hit equivalence
//!    across the while-while, stackless and wide traversal kernels and a
//!    brute-force O(n) reference. Closest hits must agree *exactly*: the
//!    kernels share the tie-break rule of
//!    [`rip_bvh::Hit::closer_than`] (smaller `t` wins, equal `t` resolves
//!    to the smaller triangle index). The batch oracles additionally pin
//!    the ray-stream layer: every kernel's batch entry points are bit-exact
//!    with its per-ray calls, including through a Morton sort/unsort
//!    round trip.
//! 3. **Predictor invariants** ([`invariants`]) — the predictor is an
//!    accelerator, never an approximation: predictor-on and predictor-off
//!    return identical hits, the §6.3 oracle ladder upper-bounds the real
//!    predictor, and Equation 1 accounting balances.
//! 4. **Metamorphic properties** ([`metamorphic`]) — ray-order
//!    permutations, Morton sorting and rigid scene transforms preserve hit
//!    sets even though they reshape predictor training history.
//! 5. **Golden snapshots** ([`snapshot`]) — the text output of all 23
//!    experiment modules at a fixed tiny scale, committed under
//!    `tests/snapshots/` and diffed in CI with a documented float
//!    tolerance.
//! 6. **Fault injection** ([`faultinject`]) — deterministic hooks that
//!    break things on purpose: panicking/slow/flaky/killed work units
//!    (via `RIP_FAULT_INJECT`) and bit-flipped, header-bombed, or
//!    truncated cache artifacts, proving every degradation path of the
//!    fault-tolerant executor.
//! 7. **Observability contract** ([`obs`]) — chrome://tracing schema
//!    validation for `--trace` output (also exposed to CI as the
//!    `trace_check` binary), schedule-independent trace normalization,
//!    and differential checks that the `rip-obs` counter registry is an
//!    exact mirror of `SimReport` and `PredictionStats`.

pub mod diff;
pub mod faultinject;
pub mod gen;
pub mod invariants;
pub mod metamorphic;
pub mod obs;
pub mod snapshot;
