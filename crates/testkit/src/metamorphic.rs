//! Metamorphic properties: transformations that must not change hits.
//!
//! Prediction accuracy depends heavily on ray order (a better-trained
//! table predicts more), so reordering rays or rigidly moving the scene
//! reshapes the predictor's internal history completely — yet the per-ray
//! *answers* must not move. These helpers run workloads through the live
//! predictor on both sides of such a transformation and compare results.

use rand::Rng;
use rip_bvh::{sorting, Bvh};
use rip_core::{trace_closest, trace_occlusion, Predictor, PredictorConfig};
use rip_math::{Ray, Triangle, Vec3};

use crate::gen;

/// Per-ray occlusion answers under a live (stateful) predictor.
pub fn occlusion_results(bvh: &Bvh, rays: &[Ray], config: PredictorConfig) -> Vec<bool> {
    let mut predictor = Predictor::new(config, bvh.bounds());
    rays.iter()
        .map(|ray| trace_occlusion(&mut predictor, bvh, ray).hit.is_some())
        .collect()
}

/// Per-ray closest-hit answers (`(tri_index, t bits)`) under a live
/// predictor.
pub fn closest_results(
    bvh: &Bvh,
    rays: &[Ray],
    config: PredictorConfig,
) -> Vec<Option<(u32, u32)>> {
    let mut predictor = Predictor::new(config, bvh.bounds());
    rays.iter()
        .map(|ray| {
            trace_closest(&mut predictor, bvh, ray)
                .hit
                .map(|h| (h.tri_index, h.t.to_bits()))
        })
        .collect()
}

/// A seeded Fisher–Yates permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut r = gen::rng(seed ^ 0xFEED);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, r.gen_range(0..i + 1));
    }
    perm
}

/// Asserts that permuting ray order leaves every ray's occlusion and
/// closest-hit answer untouched, despite the completely different
/// predictor training history.
pub fn assert_permutation_invariant(bvh: &Bvh, rays: &[Ray], config: PredictorConfig, seed: u64) {
    let perm = permutation(rays.len(), seed);
    let shuffled: Vec<Ray> = perm.iter().map(|&i| rays[i]).collect();

    let base_occ = occlusion_results(bvh, rays, config);
    let shuf_occ = occlusion_results(bvh, &shuffled, config);
    let base_clo = closest_results(bvh, rays, config);
    let shuf_clo = closest_results(bvh, &shuffled, config);
    for (new_pos, &old_pos) in perm.iter().enumerate() {
        assert_eq!(
            base_occ[old_pos], shuf_occ[new_pos],
            "occlusion answer for ray {old_pos} changed under permutation"
        );
        assert_eq!(
            base_clo[old_pos], shuf_clo[new_pos],
            "closest hit for ray {old_pos} changed under permutation"
        );
    }
}

/// Asserts that Morton-sorting the rays (the Aila–Laine §5.2 sort the
/// paper compares against) preserves every per-ray answer.
pub fn assert_morton_sort_invariant(bvh: &Bvh, rays: &[Ray], config: PredictorConfig) {
    let perm = sorting::sort_permutation(rays, &bvh.bounds());
    let sorted: Vec<Ray> = perm.iter().map(|&i| rays[i as usize]).collect();
    let base = closest_results(bvh, rays, config);
    let after = closest_results(bvh, &sorted, config);
    for (new_pos, &old_pos) in perm.iter().enumerate() {
        assert_eq!(
            base[old_pos as usize], after[new_pos],
            "closest hit for ray {old_pos} changed under Morton sorting"
        );
    }
}

/// A rigid motion: rotation about +Y followed by a translation. Rigid maps
/// preserve distances, so `t` values carry over up to rounding.
#[derive(Clone, Copy, Debug)]
pub struct Rigid {
    /// Rotation angle about the +Y axis, radians.
    pub angle: f32,
    /// Translation applied after the rotation.
    pub translation: Vec3,
}

impl Rigid {
    /// Rotates and translates a point.
    pub fn apply_point(&self, p: Vec3) -> Vec3 {
        self.apply_dir(p) + self.translation
    }

    /// Rotates a direction (no translation).
    pub fn apply_dir(&self, d: Vec3) -> Vec3 {
        let (s, c) = self.angle.sin_cos();
        Vec3::new(c * d.x + s * d.z, d.y, -s * d.x + c * d.z)
    }

    /// Transforms a triangle vertex-wise.
    pub fn apply_triangle(&self, t: &Triangle) -> Triangle {
        Triangle::new(
            self.apply_point(t.a),
            self.apply_point(t.b),
            self.apply_point(t.c),
        )
    }

    /// Transforms a ray, preserving its parameter interval.
    pub fn apply_ray(&self, r: &Ray) -> Ray {
        Ray::with_interval(
            self.apply_point(r.origin),
            self.apply_dir(r.direction),
            r.t_min,
            r.t_max,
        )
    }
}

/// Asserts that rigidly transforming scene *and* rays preserves hit/miss
/// and keeps hit distances within `rel_tol`.
///
/// Rays near silhouette edges can legitimately flip under rounding, so
/// callers should pass robust rays (e.g. [`gen::hitting_rays`] plus
/// far-away misses), not grazing ones.
pub fn assert_rigid_invariant(tris: &[Triangle], rays: &[Ray], rigid: Rigid, rel_tol: f32) {
    let bvh = Bvh::build(tris);
    let moved: Vec<Triangle> = tris.iter().map(|t| rigid.apply_triangle(t)).collect();
    let bvh_moved = Bvh::build(&moved);
    for (i, ray) in rays.iter().enumerate() {
        let before = bvh.intersect(ray, rip_bvh::TraversalKind::ClosestHit).hit;
        let after = bvh_moved
            .intersect(&rigid.apply_ray(ray), rip_bvh::TraversalKind::ClosestHit)
            .hit;
        assert_eq!(
            before.is_some(),
            after.is_some(),
            "ray {i}: hit/miss flipped under rigid transform"
        );
        if let (Some(b), Some(a)) = (before, after) {
            assert!(
                (a.t - b.t).abs() <= rel_tol * (1.0 + b.t.abs()),
                "ray {i}: hit distance moved from {} to {} under rigid transform",
                b.t,
                a.t
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        let p = permutation(100, 3);
        let mut seen = [false; 100];
        for &i in &p {
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(p, permutation(100, 3), "must be seed-deterministic");
    }

    #[test]
    fn rigid_preserves_lengths() {
        let rigid = Rigid {
            angle: 1.1,
            translation: Vec3::new(3.0, -2.0, 0.5),
        };
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 1.0);
        let d = (a - b).length();
        let d2 = (rigid.apply_point(a) - rigid.apply_point(b)).length();
        assert!((d - d2).abs() < 1e-4);
        let dir = (a - b).normalized();
        assert!((rigid.apply_dir(dir).length() - 1.0).abs() < 1e-5);
    }
}
