//! Observability contract checks: trace-schema validation, trace
//! normalization, and report-vs-registry differential helpers.
//!
//! The `rip-obs` layer promises two machine-checkable properties
//! (DESIGN.md "Observability"):
//!
//! 1. **Schema** — a trace file is line-delimited JSON where every event
//!    object carries at least `name`, `ph`, `ts` and `pid` keys (the
//!    chrome://tracing minimum). [`validate_trace`] checks a whole file
//!    with a small self-contained JSON parser; the `trace_check` binary
//!    exposes the same check to CI.
//! 2. **Determinism** — two runs of the same workload at different
//!    `--jobs` counts produce the same trace once schedule-dependent
//!    fields are stripped. [`normalize_trace`] performs that stripping:
//!    it removes `ts`, `dur` and `tid` from every event, drops wall-time
//!    args (keys ending in `_ms`/`_us`, mirroring
//!    [`rip_obs::trace::is_wall_time_key`]), and sorts the remaining
//!    lines.
//!
//! The differential helpers close the loop on counter mirroring:
//! [`report_registry_mismatches`] re-mirrors a [`SimReport`] into a
//! fresh registry and diffs it against the registry the simulator
//! actually wrote to, and [`prediction_registry_mismatches`] does the
//! same for [`PredictionStats`] mirrored by `Predicted<K>`.

use rip_gpusim::SimReport;
use rip_obs::trace::is_wall_time_key;
use rip_obs::{ClockMode, Obs};
use std::collections::BTreeMap;

/// A parsed JSON value. Numbers keep their source text verbatim so
/// normalization never re-rounds a `u64` through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its exact source text.
    Num(String),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, preserving key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes back to compact JSON (object key order preserved).
    pub fn to_json(&self) -> String {
        match self {
            JsonValue::Null => "null".to_string(),
            JsonValue::Bool(b) => b.to_string(),
            JsonValue::Num(text) => text.clone(),
            JsonValue::Str(s) => escape_json_string(s),
            JsonValue::Array(items) => {
                let inner: Vec<String> = items.iter().map(JsonValue::to_json).collect();
                format!("[{}]", inner.join(","))
            }
            JsonValue::Object(pairs) => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("{}:{}", escape_json_string(k), v.to_json()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in our own traces;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Ok(JsonValue::Num(text.to_string()))
    }
}

/// Parses one line of JSON, requiring the whole line to be consumed.
pub fn parse_json_line(line: &str) -> Result<JsonValue, String> {
    let mut parser = Parser::new(line);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing garbage"));
    }
    Ok(value)
}

/// Keys every chrome://tracing event must carry.
pub const REQUIRED_TRACE_KEYS: [&str; 4] = ["name", "ph", "ts", "pid"];

/// Validates a JSONL trace: every non-empty line must parse as a JSON
/// object carrying [`REQUIRED_TRACE_KEYS`]. Returns the event count.
pub fn validate_trace(jsonl: &str) -> Result<usize, String> {
    let mut count = 0;
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if !matches!(value, JsonValue::Object(_)) {
            return Err(format!("line {}: not a JSON object", i + 1));
        }
        for key in REQUIRED_TRACE_KEYS {
            if value.get(key).is_none() {
                return Err(format!("line {}: missing required key {key:?}", i + 1));
            }
        }
        count += 1;
    }
    Ok(count)
}

/// Normalizes a trace for cross-schedule comparison: drops the
/// schedule- and wall-time-dependent fields (`ts`, `dur`, `tid`, and
/// any arg whose key names a wall-time quantity per
/// [`rip_obs::trace::is_wall_time_key`]), zeroes `pid`, and sorts the
/// surviving lines. Two runs of the same workload must normalize to
/// identical strings regardless of `--jobs`.
pub fn normalize_trace(jsonl: &str) -> Result<String, String> {
    let mut lines = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let JsonValue::Object(pairs) = value else {
            return Err(format!("line {}: not a JSON object", i + 1));
        };
        let mut kept = Vec::new();
        for (key, value) in pairs {
            match key.as_str() {
                "ts" | "dur" | "tid" => continue,
                "pid" => kept.push((key, JsonValue::Num("0".to_string()))),
                "args" => {
                    let args = match value {
                        JsonValue::Object(args) => args
                            .into_iter()
                            .filter(|(k, _)| !is_wall_time_key(k))
                            .collect(),
                        other => {
                            return Err(format!("line {}: args is not an object: {other:?}", i + 1))
                        }
                    };
                    kept.push((key, JsonValue::Object(args)));
                }
                _ => kept.push((key, value)),
            }
        }
        lines.push(JsonValue::Object(kept).to_json());
    }
    lines.sort_unstable();
    Ok(lines.join("\n"))
}

/// Diffs the `gpusim.*` counters a simulator wrote into `obs` against a
/// fresh re-mirroring of `report`. Empty means the registry is exactly
/// one faithful copy of the report (the simulator mirrored once, and
/// the mirror mapping lost nothing).
pub fn report_registry_mismatches(report: &SimReport, obs: &Obs) -> Vec<String> {
    let expected_obs = Obs::new(ClockMode::Logical);
    report.mirror_into(&expected_obs);
    let expected = expected_obs.registry().snapshot();
    let actual: BTreeMap<String, u64> = obs
        .registry()
        .snapshot()
        .into_iter()
        .filter(|(path, _)| path.starts_with("gpusim."))
        .collect();
    diff_counter_maps(&expected, &actual)
}

/// Diffs the `predictor.*` counters in `obs` against `stats`
/// field-for-field. Empty means `Predicted<K>` mirrored exactly.
pub fn prediction_registry_mismatches(stats: &rip_core::PredictionStats, obs: &Obs) -> Vec<String> {
    let expected: BTreeMap<String, u64> = [
        ("predictor.rays", stats.rays),
        ("predictor.hits", stats.hits),
        ("predictor.predicted", stats.predicted),
        ("predictor.verified", stats.verified),
        (
            "predictor.predicted_nodes_evaluated",
            stats.predicted_nodes_evaluated,
        ),
        (
            "predictor.prediction_eval_fetches",
            stats.prediction_eval_fetches,
        ),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    let actual: BTreeMap<String, u64> = obs
        .registry()
        .snapshot()
        .into_iter()
        .filter(|(path, _)| path.starts_with("predictor."))
        .collect();
    diff_counter_maps(&expected, &actual)
}

fn diff_counter_maps(
    expected: &BTreeMap<String, u64>,
    actual: &BTreeMap<String, u64>,
) -> Vec<String> {
    let mut mismatches = Vec::new();
    for (path, want) in expected {
        match actual.get(path) {
            Some(got) if got == want => {}
            Some(got) => mismatches.push(format!("{path}: registry {got} != report {want}")),
            // A zero-valued field that was never touched is fine: the
            // registry only materializes counters that were added to.
            None if *want == 0 => {}
            None => mismatches.push(format!("{path}: missing from registry (want {want})")),
        }
    }
    for (path, got) in actual {
        if !expected.contains_key(path) {
            mismatches.push(format!("{path}: unexpected registry counter (= {got})"));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_trace_lines() {
        let line = r#"{"name":"build","cat":"exec.cache","ph":"i","ts":12,"pid":7,"tid":1,"args":{"case":"sb \"q\"","built_ms":3}}"#;
        let value = parse_json_line(line).unwrap();
        assert_eq!(value.to_json(), line);
        assert_eq!(
            value.get("args").unwrap().get("case"),
            Some(&JsonValue::Str("sb \"q\"".to_string()))
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json_line("{\"a\":}").is_err());
        assert!(parse_json_line("{\"a\":1} extra").is_err());
        assert!(parse_json_line("not json").is_err());
    }

    #[test]
    fn validate_requires_trace_keys() {
        let good = "{\"name\":\"x\",\"ph\":\"i\",\"ts\":1,\"pid\":2}\n";
        assert_eq!(validate_trace(good).unwrap(), 1);
        let bad = "{\"name\":\"x\",\"ph\":\"i\",\"ts\":1}\n";
        let err = validate_trace(bad).unwrap_err();
        assert!(err.contains("pid"), "{err}");
    }

    #[test]
    fn normalize_strips_schedule_and_wall_time() {
        let a = concat!(
            "{\"name\":\"b\",\"ph\":\"i\",\"ts\":5,\"pid\":1,\"tid\":3,\"args\":{\"case\":\"sb\",\"built_ms\":9}}\n",
            "{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"dur\":2,\"pid\":1,\"tid\":0,\"args\":{}}\n",
        );
        let b = concat!(
            "{\"name\":\"a\",\"ph\":\"X\",\"ts\":9,\"dur\":7,\"pid\":2,\"tid\":5,\"args\":{}}\n",
            "{\"name\":\"b\",\"ph\":\"i\",\"ts\":2,\"pid\":2,\"tid\":1,\"args\":{\"case\":\"sb\",\"built_ms\":1}}\n",
        );
        assert_eq!(normalize_trace(a).unwrap(), normalize_trace(b).unwrap());
        assert!(!normalize_trace(a).unwrap().contains("built_ms"));
    }

    #[test]
    fn counter_diff_reports_every_kind_of_mismatch() {
        let expected: BTreeMap<String, u64> = [
            ("a".to_string(), 1),
            ("b".to_string(), 0),
            ("c".to_string(), 3),
        ]
        .into_iter()
        .collect();
        let actual: BTreeMap<String, u64> = [("a".to_string(), 2), ("d".to_string(), 4)]
            .into_iter()
            .collect();
        let diff = diff_counter_maps(&expected, &actual);
        assert_eq!(diff.len(), 3, "{diff:?}");
        assert!(diff.iter().any(|m| m.starts_with("a:")));
        assert!(diff.iter().any(|m| m.starts_with("c:")));
        assert!(diff.iter().any(|m| m.starts_with("d:")));
    }
}
