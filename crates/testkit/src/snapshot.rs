//! Tolerance-aware golden snapshots of the 23 experiment reports.
//!
//! Each experiment's rendered text at a fixed tiny scale is committed
//! under `tests/snapshots/<name>.snap` and diffed in CI. On one platform
//! reruns are byte-identical (the execution engine guarantees output
//! independent of the job count); the diff additionally forgives numeric
//! tokens that differ within [`REL_TOLERANCE`]/[`ABS_TOLERANCE`], so a
//! libm ulp difference on another platform does not mask-fail the suite
//! while any real regression still does.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! cargo run --release -p rip-testkit --bin snapshots -- --update
//! ```

use std::path::PathBuf;

use rip_bench::{Context, SceneSelection};
use rip_scene::SceneScale;

/// Relative tolerance for numeric tokens when lines are not byte-equal.
pub const REL_TOLERANCE: f64 = 1e-3;
/// Absolute tolerance floor for numeric tokens near zero.
pub const ABS_TOLERANCE: f64 = 1e-6;

/// The fixed context every snapshot is captured under: tiny scale, the
/// first two scenes. Small enough for CI, large enough that every
/// experiment produces a non-trivial table.
pub fn snapshot_context() -> Context {
    Context::new(SceneScale::Tiny, SceneSelection::Subset(2))
}

/// Directory holding the committed `.snap` files.
pub fn snapshot_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/snapshots"
    ))
}

/// Path of one experiment's snapshot.
pub fn snapshot_path(name: &str) -> PathBuf {
    snapshot_dir().join(format!("{name}.snap"))
}

/// Writes (or overwrites) a snapshot; returns its path.
pub fn update(name: &str, actual: &str) -> std::io::Result<PathBuf> {
    let path = snapshot_path(name);
    std::fs::create_dir_all(snapshot_dir())?;
    std::fs::write(&path, actual)?;
    Ok(path)
}

/// Compares `actual` against the committed snapshot for `name`.
pub fn verify(name: &str, actual: &str) -> Result<(), String> {
    let path = snapshot_path(name);
    let expected = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "missing snapshot {} ({e}); regenerate with \
             `cargo run --release -p rip-testkit --bin snapshots -- --update`",
            path.display()
        )
    })?;
    compare(&expected, actual).map_err(|e| format!("{name}: {e}"))
}

/// Diffs two report texts: byte equality first, then a line-by-line,
/// token-by-token comparison where numeric tokens may differ within the
/// documented tolerance and table rules (all-dash tokens) may change
/// length with column widths.
pub fn compare(expected: &str, actual: &str) -> Result<(), String> {
    if expected == actual {
        return Ok(());
    }
    let e_lines: Vec<&str> = expected.lines().collect();
    let a_lines: Vec<&str> = actual.lines().collect();
    if e_lines.len() != a_lines.len() {
        return Err(format!(
            "line count changed: {} -> {}",
            e_lines.len(),
            a_lines.len()
        ));
    }
    for (i, (e, a)) in e_lines.iter().zip(&a_lines).enumerate() {
        compare_line(e, a).map_err(|why| {
            format!(
                "line {} differs ({why})\n  expected: {e}\n  actual:   {a}",
                i + 1
            )
        })?;
    }
    Ok(())
}

fn compare_line(expected: &str, actual: &str) -> Result<(), String> {
    let e: Vec<&str> = expected.split_whitespace().collect();
    let a: Vec<&str> = actual.split_whitespace().collect();
    if e.len() != a.len() {
        return Err(format!("token count {} -> {}", e.len(), a.len()));
    }
    for (et, at) in e.iter().zip(&a) {
        if !tokens_match(et, at) {
            return Err(format!("token {et:?} vs {at:?}"));
        }
    }
    Ok(())
}

fn tokens_match(expected: &str, actual: &str) -> bool {
    if expected == actual {
        return true;
    }
    // Table rules: their length follows column widths, which may shift
    // when a tolerated numeric token changes width.
    let is_rule = |s: &str| !s.is_empty() && s.chars().all(|c| c == '-');
    if is_rule(expected) && is_rule(actual) {
        return true;
    }
    // Numeric comparison with identical non-numeric decoration
    // ("12.5%," vs "12.6%," passes; "12.5%" vs "12.5x" does not).
    match (split_numeric(expected), split_numeric(actual)) {
        (Some((ep, ev, es)), Some((ap, av, asuf))) if ep == ap && es == asuf => {
            (ev - av).abs() <= ABS_TOLERANCE + REL_TOLERANCE * ev.abs().max(av.abs())
        }
        _ => false,
    }
}

/// Splits a token into (prefix, numeric value, suffix), taking the longest
/// parseable numeric core starting at the first digit/sign/dot.
fn split_numeric(token: &str) -> Option<(&str, f64, &str)> {
    let start = token.find(|c: char| c.is_ascii_digit() || c == '-' || c == '+' || c == '.')?;
    let bytes = token.as_bytes();
    for end in (start + 1..=bytes.len()).rev() {
        if !token.is_char_boundary(end) {
            continue;
        }
        if let Ok(v) = token[start..end].parse::<f64>() {
            return Some((&token[..start], v, &token[end..]));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_text_passes() {
        compare("a b 1.5\nrow 2", "a b 1.5\nrow 2").unwrap();
    }

    #[test]
    fn numeric_drift_within_tolerance_passes() {
        compare("saving 12.500% done", "saving 12.506% done").unwrap();
        compare("t = 0.0000001", "t = 0.0000004").unwrap();
    }

    #[test]
    fn numeric_drift_beyond_tolerance_fails() {
        let err = compare("saving 12.5%", "saving 13.9%").unwrap_err();
        assert!(
            err.contains("12.5"),
            "diagnostic must quote the token: {err}"
        );
    }

    #[test]
    fn structural_changes_fail() {
        assert!(compare("one line", "one line\ntwo lines").is_err());
        assert!(compare("a b c", "a b").is_err());
        assert!(compare("12.5%", "12.5x").is_err());
        assert!(compare("label 5", "renamed 5").is_err());
    }

    #[test]
    fn table_rules_may_change_width() {
        compare("---- -----", "----- ----").unwrap();
        assert!(compare("----", "abcd").is_err());
    }

    #[test]
    fn numeric_core_splitting_handles_decorations() {
        assert_eq!(split_numeric("12.5%"), Some(("", 12.5, "%")));
        assert_eq!(split_numeric("(3)"), Some(("(", 3.0, ")")));
        assert_eq!(split_numeric("x1.25,"), Some(("x", 1.25, ",")));
        assert_eq!(split_numeric("abc"), None);
    }
}
