//! RIPA v2 artifact-format gate: corruption never panics, mapping never
//! changes bytes.
//!
//! Three layers of assurance over the container introduced for the
//! zero-copy artifact store:
//!
//! 1. **Corruption matrix** — every [`faultinject`] damage mode
//!    (`bit_flip` across header, section table and payload;
//!    `header_bomb` on the section count; `truncate` at several cut
//!    points) applied to scene and BVH artifacts must end in a
//!    quarantine + rebuild through the real [`CaseCache`], never a
//!    panic and never a stale load.
//! 2. **Round-trip properties** — encode → write → [`MappedArtifact`]
//!    → `decode_shared` → re-encode reproduces the original byte
//!    stream exactly, for procedural scenes and for BVHs/wide BVHs
//!    over every generator recipe.
//! 3. **Cross-backend digest** — the committed `artifact_case.snap`
//!    digest of disk-loaded cases must reproduce under both the owned
//!    and the `mmap` backends (CI runs this suite with the `mmap`
//!    feature on and off), which is what makes the backends provably
//!    bit-identical rather than merely both green.
//!
//! Regenerate the digest after an intentional format change with:
//!
//! ```text
//! RIP_UPDATE_SNAPSHOTS=1 cargo test -p rip-testkit --test artifact_format
//! ```

use proptest::prelude::*;
use rip_bvh::Bvh;
use rip_exec::{CaseCache, CaseKey, MappedArtifact};
use rip_scene::{SceneId, SceneScale, SCENE_IDS};
use rip_testkit::{faultinject, gen};
use std::path::{Path, PathBuf};

/// Committed digest of cases served through the mapped artifact path.
const CASE_SNAPSHOT: &str = "artifact_case.snap";

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/snapshots"
    ))
    .join(name)
}

fn backend_name() -> &'static str {
    if cfg!(feature = "mmap") {
        "mmap"
    } else {
        "owned"
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rip-artifact-format-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key() -> CaseKey {
    CaseKey::square(SceneId::FireplaceRoom, SceneScale::Tiny, 20)
}

/// FNV-1a 64-bit, matching the digest idiom of `wide_simd.rs`.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

// ---------------------------------------------------------------------
// 1. Corruption matrix
// ---------------------------------------------------------------------

/// One corruption mode of the matrix: a label plus the damage applied to
/// an artifact file of known length.
type Corruption = (&'static str, fn(&Path, usize));

const CORRUPTIONS: [Corruption; 7] = [
    ("flip-magic", |p, _| faultinject::bit_flip(p, 1).unwrap()),
    ("flip-version", |p, _| faultinject::bit_flip(p, 5).unwrap()),
    ("flip-table", |p, _| faultinject::bit_flip(p, 40).unwrap()),
    ("flip-payload", |p, len| {
        faultinject::bit_flip(p, len / 2).unwrap()
    }),
    ("bomb-sections", |p, _| faultinject::header_bomb(p).unwrap()),
    ("trunc-table", |p, _| faultinject::truncate(p, 48).unwrap()),
    ("trunc-payload", |p, len| {
        faultinject::truncate(p, len - len / 4).unwrap()
    }),
];

/// Every (damage mode × artifact kind) cell must quarantine and rebuild
/// through the real cache — no panic, no stale geometry.
#[test]
fn corruption_matrix_always_quarantines_and_rebuilds() {
    for ext in ["scene", "bvh"] {
        for (label, damage) in CORRUPTIONS {
            let dir = temp_store(&format!("{ext}-{label}"));
            {
                let cache = CaseCache::with_disk_dir(Some(dir.clone()));
                cache.get_or_build(key());
            }
            let paths = faultinject::artifacts_with_ext(&dir, ext);
            assert_eq!(paths.len(), 1, "{ext}/{label}: expected one artifact");
            let len = std::fs::metadata(&paths[0]).unwrap().len() as usize;
            damage(&paths[0], len);

            let cache = CaseCache::with_disk_dir(Some(dir.clone()));
            let case = cache.get_or_build(key());
            assert_eq!(
                cache.stats().disk_hits,
                0,
                "{ext}/{label}: a damaged artifact was served as a hit"
            );
            assert_eq!(
                cache.stats().builds,
                1,
                "{ext}/{label}: expected a clean rebuild"
            );
            assert!(
                cache.stats().quarantines >= 1,
                "{ext}/{label}: damaged artifact must be quarantined"
            );
            case.bvh.validate().unwrap();
            assert!(case.scene.mesh.triangle_count() > 0);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

// ---------------------------------------------------------------------
// 2. Round-trip properties
// ---------------------------------------------------------------------

/// Writes `bytes` to a scratch file, opens it through [`MappedArtifact`]
/// (exercising whichever backend this build compiled in) and hands the
/// mapped bytes to `decode_then_encode`; the result must equal `bytes`.
fn roundtrip_through_map(
    tag: &str,
    bytes: &[u8],
    decode_then_encode: impl Fn(rip_pod::Bytes) -> Vec<u8>,
) {
    let path = std::env::temp_dir().join(format!(
        "rip-artifact-roundtrip-{tag}-{}",
        std::process::id()
    ));
    std::fs::write(&path, bytes).unwrap();
    let map = MappedArtifact::open(&path).unwrap();
    let reencoded = decode_then_encode(map.bytes());
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        bytes,
        &reencoded[..],
        "{tag}: encode → map ({}) → decode → encode changed bytes",
        backend_name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scene artifacts survive encode → map → decode bit-exactly, for
    /// every scene id and a spread of viewports.
    #[test]
    fn scene_roundtrip_is_bit_exact(
        scene_ix in 0usize..SCENE_IDS.len(),
        viewport in 4u32..24,
    ) {
        let scene = SCENE_IDS[scene_ix]
            .build_with_viewport(SceneScale::Tiny, viewport, viewport);
        let bytes = rip_scene::serial::encode(&scene);
        roundtrip_through_map(&format!("scene-{scene_ix}-{viewport}"), &bytes, |b| {
            rip_scene::serial::encode(&rip_scene::serial::decode_shared(b).unwrap())
        });
    }

    /// Binary-BVH artifacts round-trip bit-exactly over every generator
    /// recipe, and the decoded tree still passes full validation.
    #[test]
    fn bvh_roundtrip_is_bit_exact(
        recipe_ix in 0usize..gen::ALL_RECIPES.len(),
        n in 8usize..160,
        seed in 0u64..1_000,
    ) {
        let tris = gen::ALL_RECIPES[recipe_ix].triangles(n, seed);
        let bvh = Bvh::build(&tris);
        let bytes = rip_bvh::serial::encode(&bvh);
        roundtrip_through_map(&format!("bvh-{recipe_ix}-{n}-{seed}"), &bytes, |b| {
            let decoded = rip_bvh::serial::decode_shared(b).unwrap();
            decoded.validate().unwrap();
            rip_bvh::serial::encode(&decoded)
        });
    }

    /// Compressed wide-BVH artifacts round-trip bit-exactly through the
    /// mapped path as well.
    #[test]
    fn wide_roundtrip_is_bit_exact(
        recipe_ix in 0usize..gen::ALL_RECIPES.len(),
        seed in 0u64..1_000,
    ) {
        let tris = gen::ALL_RECIPES[recipe_ix].triangles(96, seed);
        let wide = rip_bvh::WideBvh::from_binary(&Bvh::build(&tris));
        let bytes = rip_bvh::serial::encode_wide(&wide);
        roundtrip_through_map(&format!("wide-{recipe_ix}-{seed}"), &bytes, |b| {
            rip_bvh::serial::encode_wide(
                &rip_bvh::serial::decode_wide_shared(b).unwrap(),
            )
        });
    }
}

// ---------------------------------------------------------------------
// 3. Cross-backend digest
// ---------------------------------------------------------------------

/// One digest line per key: the canonical re-encoded bytes of a case
/// that was persisted by one cache and then *loaded from disk* by a
/// fresh one — i.e. a case whose buffers borrow the mapped artifact.
fn mapped_case_digest() -> String {
    let keys = [
        CaseKey::square(SceneId::FireplaceRoom, SceneScale::Tiny, 20),
        CaseKey::square(SceneId::Sibenik, SceneScale::Tiny, 16),
        CaseKey::square(SceneId::CrytekSponza, SceneScale::Tiny, 12),
    ];
    let mut out = String::new();
    for key in keys {
        let dir = temp_store(&format!("digest-{}", key.label()));
        {
            let cache = CaseCache::with_disk_dir(Some(dir.clone()));
            cache.get_or_build(key);
        }
        let cache = CaseCache::with_disk_dir(Some(dir.clone()));
        let case = cache.get_or_build(key);
        assert_eq!(
            cache.stats().disk_hits,
            1,
            "{}: digest must be computed over a disk-loaded case",
            key.label()
        );
        assert!(
            case.scene.mesh.is_shared(),
            "{}: a disk-loaded mesh must borrow the mapped bytes",
            key.label()
        );
        let mut fnv = Fnv::new();
        fnv.write(&rip_scene::serial::encode(&case.scene));
        fnv.write(&rip_bvh::serial::encode(&case.bvh));
        out.push_str(&format!("{} {:016x}\n", key.label(), fnv.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
    out
}

/// The committed case digest reproduces under whichever artifact backend
/// this build compiled in — run with and without `--features mmap`, the
/// two runs must agree on these exact bytes.
#[test]
fn mapped_cases_match_committed_digest() {
    let actual = mapped_case_digest();
    let path = snapshot_path(CASE_SNAPSHOT);
    if std::env::var_os("RIP_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); regenerate with \
             RIP_UPDATE_SNAPSHOTS=1 cargo test -p rip-testkit --test artifact_format",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "[backend {}] mapped-case digest diverged from {} — the {} \
         backend no longer reproduces the pinned case bytes",
        backend_name(),
        path.display(),
        backend_name(),
    );
}
