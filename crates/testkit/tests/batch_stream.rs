//! Batched ray-stream oracles: the SoA batch layer must be invisible.
//!
//! Three properties over every generated scene family:
//!
//! 1. Each kernel's batch entry points are bit-exact (hits *and*
//!    statistics) with its own per-ray calls.
//! 2. Morton-sorting a stream and un-sorting the results reproduces the
//!    unsorted run bit for bit — the §5.2 sorted-ray configuration can
//!    only change throughput, never an answer.
//! 3. The predictor wrapper composes with all three BVH kernels without
//!    changing any answer, cold or warm, sorted or not.

use rip_bvh::{
    Bvh, RayBatch, StacklessKernel, TraversalKernel, WhileWhileKernel, WideBvh, WideKernel,
};
use rip_core::{Predicted, PredictorConfig};
use rip_math::{Ray, Triangle};
use rip_testkit::{diff, gen};

/// A mixed workload over one recipe: guaranteed hits, box-sampled rays
/// (hit/miss blend) and grazing edge rays.
fn workload(recipe: gen::SceneRecipe, seed: u64) -> (Vec<Triangle>, Vec<Ray>) {
    let tris = recipe.triangles(150, seed);
    let bounds = Bvh::build(&tris).bounds();
    let mut rays = gen::hitting_rays(&tris, 90, seed ^ 0x11);
    rays.extend(gen::ray_batch(&bounds, 60, seed ^ 0x22));
    rays.extend(gen::edge_rays(&tris, 30, seed ^ 0x33));
    (tris, rays)
}

fn eager() -> PredictorConfig {
    PredictorConfig {
        update_delay: 0,
        ..PredictorConfig::paper_default()
    }
}

#[test]
fn batch_paths_are_bit_exact_with_scalar_for_all_kernels() {
    for recipe in gen::ALL_RECIPES {
        for seed in 0..2 {
            let (tris, rays) = workload(recipe, seed);
            diff::assert_batch_matches_scalar(recipe.name(), &tris, &rays);
        }
    }
}

#[test]
fn morton_sorted_stream_unsorts_to_the_original_run() {
    for recipe in gen::ALL_RECIPES {
        for seed in 0..2 {
            let (tris, rays) = workload(recipe, seed);
            diff::assert_batch_morton_exact(recipe.name(), &tris, &rays);
        }
    }
}

#[test]
fn predicted_wrapper_is_transparent_over_all_three_kernels() {
    let (tris, rays) = workload(gen::SceneRecipe::Walls, 5);
    let bvh = Bvh::build(&tris);
    let wide = WideBvh::from_binary(&bvh);
    let batch = RayBatch::from_rays(&rays);

    let occlusion = WhileWhileKernel::new(&bvh).any_hit_batch(&batch);
    let closest = WhileWhileKernel::new(&bvh).closest_hit_batch(&batch);

    let mut ww = Predicted::new(&bvh, eager(), WhileWhileKernel::new(&bvh));
    let mut sl = Predicted::new(&bvh, eager(), StacklessKernel::new(&bvh));
    let mut wd = Predicted::new(&bvh, eager(), WideKernel::new(&wide, &bvh));
    for kernel in [&mut ww as &mut dyn TraversalKernel, &mut sl, &mut wd] {
        // Two passes: cold (training) and warm (verifying). The occlusion
        // answer and the exact closest hit must match the bare kernel on
        // both.
        for pass in 0..2 {
            let occ = kernel.any_hit_batch(&batch);
            let clo = kernel.closest_hit_batch(&batch);
            for i in 0..batch.len() {
                assert_eq!(
                    occ[i].hit.is_some(),
                    occlusion[i].hit.is_some(),
                    "{} pass {pass} ray {i}: occlusion answer changed",
                    kernel.name()
                );
                assert_eq!(
                    clo[i].hit.map(|h| (h.tri_index, h.t.to_bits())),
                    closest[i].hit.map(|h| (h.tri_index, h.t.to_bits())),
                    "{} pass {pass} ray {i}: closest hit drifted",
                    kernel.name()
                );
            }
        }
    }
}

#[test]
fn predicted_wrapper_answers_survive_morton_sorting() {
    let (tris, rays) = workload(gen::SceneRecipe::Clustered, 9);
    let bvh = Bvh::build(&tris);
    let batch = RayBatch::from_rays(&rays);
    let (sorted, perm) = batch.morton_sorted(&bvh.bounds());

    // The sort completely reshapes the predictor's training history, so
    // run a fresh predictor on each ordering and compare answers only.
    let base = Predicted::new(&bvh, eager(), WhileWhileKernel::new(&bvh)).closest_hit_batch(&batch);
    let unsorted = perm.unsort(
        &Predicted::new(&bvh, eager(), WhileWhileKernel::new(&bvh)).closest_hit_batch(&sorted),
    );
    for (i, (b, u)) in base.iter().zip(&unsorted).enumerate() {
        assert_eq!(
            b.hit.map(|h| (h.tri_index, h.t.to_bits())),
            u.hit.map(|h| (h.tri_index, h.t.to_bits())),
            "ray {i}: closest hit changed under Morton sorting with a live predictor"
        );
    }
}
