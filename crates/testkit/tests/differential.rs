//! Differential oracle suite: four-way kernel agreement on every recipe.
//!
//! Closest hits are compared *exactly* (same `t` bits, same triangle
//! index) — the kernels share the tie-break rule of
//! `rip_bvh::Hit::closer_than`, so visitation order must not matter.

use rip_math::{Ray, Triangle, Vec3};
use rip_testkit::diff::{assert_kernels_agree, DiffOracle};
use rip_testkit::gen::{self, SceneRecipe};

/// Per-recipe batch: mixed probing rays + guaranteed hits + tie-break
/// provokers aimed exactly at shared vertices and edge midpoints.
fn batch_for(recipe: SceneRecipe, seed: u64) -> (Vec<Triangle>, Vec<Ray>) {
    let tris = recipe.triangles(180, seed);
    let bvh = rip_bvh::Bvh::build(&tris);
    let mut rays = gen::ray_batch(&bvh.bounds(), 120, seed);
    rays.extend(gen::hitting_rays(&tris, 60, seed));
    rays.extend(gen::edge_rays(&tris, 60, seed));
    (tris, rays)
}

#[test]
fn kernels_agree_on_soup() {
    for seed in 0..3 {
        let (tris, rays) = batch_for(SceneRecipe::Soup, seed);
        assert_kernels_agree("soup", &tris, &rays);
    }
}

#[test]
fn kernels_agree_on_flat_grid() {
    let (tris, rays) = batch_for(SceneRecipe::Grid, 1);
    assert_kernels_agree("grid", &tris, &rays);
}

#[test]
fn kernels_agree_on_shared_edge_walls() {
    let (tris, rays) = batch_for(SceneRecipe::Walls, 2);
    assert_kernels_agree("walls", &tris, &rays);
}

#[test]
fn kernels_agree_on_clustered_scene() {
    let (tris, rays) = batch_for(SceneRecipe::Clustered, 3);
    assert_kernels_agree("clustered", &tris, &rays);
}

#[test]
fn kernels_agree_on_degenerate_triangles() {
    for seed in 0..3 {
        let (tris, rays) = batch_for(SceneRecipe::Degenerate, seed);
        assert_kernels_agree("degenerate", &tris, &rays);
    }
}

#[test]
fn equal_t_ties_resolve_to_lowest_triangle_index() {
    // Rays through shared wall edges hit two (or more) triangles at the
    // identical t; every kernel must report the lowest original index.
    let tris = SceneRecipe::Walls.triangles(120, 4);
    let oracle = DiffOracle::new(&tris);
    let mut observed_tie = false;
    for ray in gen::edge_rays(&tris, 200, 4) {
        let a = oracle.closest_answers(&ray);
        if let Some((winner, t)) = a.brute {
            // Count how many triangles intersect at exactly the winning t.
            let ties = tris
                .iter()
                .enumerate()
                .filter(|(_, tri)| tri.intersect(&ray).is_some_and(|h| h.t == t))
                .map(|(i, _)| i as u32)
                .collect::<Vec<_>>();
            if ties.len() > 1 {
                observed_tie = true;
                assert_eq!(
                    Some(&winner),
                    ties.iter().min(),
                    "tie at t = {t} must resolve to the smallest index, got {winner} of {ties:?}"
                );
            }
        }
        oracle.check_ray(&ray).unwrap();
    }
    assert!(
        observed_tie,
        "edge rays on shared-edge walls should produce at least one exact tie"
    );
}

#[test]
fn grazing_axis_rays_agree_on_flat_geometry() {
    // Rays travelling inside the y = 0 plane of the grid graze flat AABBs
    // edge-on — the classic slab-test corner case.
    let tris = SceneRecipe::Grid.triangles(128, 5);
    let oracle = DiffOracle::new(&tris);
    let mut r = gen::rng(99);
    use rand::Rng;
    for i in 0..150 {
        let dir = [Vec3::X, Vec3::Z, -Vec3::X, -Vec3::Z][i % 4];
        let origin = Vec3::new(
            r.gen_range(-2.0..10.0),
            // Exactly in, just above, and just below the plane.
            [0.0, 1e-6, -1e-6][i % 3],
            r.gen_range(-2.0..10.0),
        );
        oracle.check_ray(&Ray::new(origin, dir)).unwrap();
    }
}

#[test]
fn single_triangle_and_tiny_trees_agree() {
    let single = vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)];
    let rays = vec![
        Ray::new(Vec3::new(0.2, 0.2, -1.0), Vec3::Z),
        Ray::new(Vec3::new(5.0, 5.0, -1.0), Vec3::Z),
        Ray::new(Vec3::new(0.2, 0.2, 1.0), -Vec3::Z),
    ];
    assert_kernels_agree("single", &single, &rays);

    for n in [2, 3, 5, 9] {
        let tris = SceneRecipe::Soup.triangles(n, n as u64);
        let bvh = rip_bvh::Bvh::build(&tris);
        let rays = gen::ray_batch(&bvh.bounds(), 80, n as u64);
        assert_kernels_agree("tiny", &tris, &rays);
    }
}

#[test]
fn finite_segments_and_custom_intervals_agree() {
    let tris = SceneRecipe::Soup.triangles(150, 11);
    let oracle = DiffOracle::new(&tris);
    let mut r = gen::rng(11);
    use rand::Rng;
    for _ in 0..150 {
        let o = Vec3::new(
            r.gen_range(-8.0..8.0),
            r.gen_range(-8.0..8.0),
            r.gen_range(-8.0..8.0),
        );
        let d = rip_math::sampling::uniform_sphere(r.gen(), r.gen());
        let (t0, t1) = (r.gen_range(0.0..3.0f32), r.gen_range(3.0..25.0f32));
        oracle.check_ray(&Ray::with_interval(o, d, t0, t1)).unwrap();
    }
}
