//! Golden-snapshot gate: every experiment's report text must match its
//! committed snapshot (modulo the documented float tolerance).
//!
//! Set `RIP_UPDATE_SNAPSHOTS=1` (or run the `snapshots` bin with
//! `--update`) to regenerate after an intentional output change.

use rip_bench::experiments;
use rip_testkit::snapshot;

#[test]
fn all_experiments_match_committed_snapshots() {
    let update = std::env::var("RIP_UPDATE_SNAPSHOTS").is_ok_and(|v| v == "1");
    let ctx = snapshot::snapshot_context();
    let reports = experiments::run_all(&ctx);
    assert_eq!(reports.len(), experiments::ALL.len());

    let mut failures = Vec::new();
    for ((name, _), report) in experiments::ALL.iter().zip(reports) {
        let text = report.to_string();
        if update {
            snapshot::update(name, &text).expect("snapshot write failed");
        } else if let Err(e) = snapshot::verify(name, &text) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} experiment snapshot(s) diverged:\n{}",
        failures.len(),
        failures.join("\n---\n")
    );
}

#[test]
fn snapshot_directory_covers_every_experiment() {
    let dir = snapshot::snapshot_dir();
    for (name, _) in experiments::ALL {
        assert!(
            snapshot::snapshot_path(name).is_file(),
            "missing committed snapshot for {name} in {}",
            dir.display()
        );
    }
    // Digest snapshots owned by the SIMD differential suite (see
    // tests/wide_simd.rs) and the artifact-format suite (see
    // tests/artifact_format.rs) share the directory but are not
    // experiments.
    let digests = [
        "wide_simd_hits.snap",
        "wide_bvh_serial.snap",
        "artifact_case.snap",
    ];
    for name in digests {
        assert!(
            dir.join(name).is_file(),
            "missing committed digest snapshot {name} in {}",
            dir.display()
        );
    }
    let committed = std::fs::read_dir(&dir)
        .expect("snapshot dir must exist")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
        .count();
    assert_eq!(
        committed,
        experiments::ALL.len() + digests.len(),
        "stray or missing .snap files under {}",
        dir.display()
    );
}
