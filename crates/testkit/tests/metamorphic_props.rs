//! Metamorphic suite: reorderings and rigid motions reshape predictor
//! history but must never move a single hit.

use rip_bvh::Bvh;
use rip_core::PredictorConfig;
use rip_math::Vec3;
use rip_testkit::gen::{self, SceneRecipe};
use rip_testkit::metamorphic::{self, Rigid};

fn eager() -> PredictorConfig {
    PredictorConfig {
        update_delay: 0,
        ..PredictorConfig::paper_default()
    }
}

#[test]
fn ray_permutation_preserves_all_answers() {
    for recipe in [
        SceneRecipe::Soup,
        SceneRecipe::Walls,
        SceneRecipe::Degenerate,
    ] {
        let tris = recipe.triangles(140, 31);
        let bvh = Bvh::build(&tris);
        let mut rays = gen::hitting_rays(&tris, 120, 31);
        rays.extend(gen::ray_batch(&bvh.bounds(), 80, 31));
        metamorphic::assert_permutation_invariant(&bvh, &rays, eager(), 31);
    }
}

#[test]
fn morton_sorting_preserves_all_answers() {
    let tris = SceneRecipe::Clustered.triangles(160, 32);
    let bvh = Bvh::build(&tris);
    let mut rays = gen::hitting_rays(&tris, 120, 32);
    rays.extend(gen::ray_batch(&bvh.bounds(), 80, 32));
    metamorphic::assert_morton_sort_invariant(&bvh, &rays, eager());
}

#[test]
fn translation_preserves_hits() {
    let tris = SceneRecipe::Soup.triangles(120, 33);
    let rays = gen::hitting_rays(&tris, 150, 33);
    let rigid = Rigid {
        angle: 0.0,
        translation: Vec3::new(13.5, -4.25, 7.75),
    };
    metamorphic::assert_rigid_invariant(&tris, &rays, rigid, 1e-3);
}

#[test]
fn rotation_preserves_hits() {
    let tris = SceneRecipe::Clustered.triangles(120, 34);
    let rays = gen::hitting_rays(&tris, 150, 34);
    let rigid = Rigid {
        angle: 0.83,
        translation: Vec3::ZERO,
    };
    metamorphic::assert_rigid_invariant(&tris, &rays, rigid, 1e-3);
}

#[test]
fn combined_rigid_motion_preserves_hits_and_misses() {
    let tris = SceneRecipe::Walls.triangles(120, 35);
    let mut rays = gen::hitting_rays(&tris, 120, 35);
    // Clear misses: far away, pointing outward.
    for i in 0..40 {
        rays.push(rip_math::Ray::new(
            Vec3::new(200.0 + i as f32, 50.0, -80.0),
            Vec3::Y,
        ));
    }
    let rigid = Rigid {
        angle: -1.2,
        translation: Vec3::new(-6.0, 2.0, 9.0),
    };
    metamorphic::assert_rigid_invariant(&tris, &rays, rigid, 1e-3);
}

#[test]
fn permutation_invariance_survives_training_delay() {
    // A non-zero update delay makes prediction coverage depend strongly on
    // ray order; the per-ray answers still must not.
    let tris = SceneRecipe::Walls.triangles(140, 36);
    let bvh = Bvh::build(&tris);
    let rays = gen::hitting_rays(&tris, 200, 36);
    metamorphic::assert_permutation_invariant(&bvh, &rays, PredictorConfig::paper_default(), 36);
}
