//! Differential checks for the `rip-obs` counter mirror: the registry
//! attached to a simulator or a `Predicted<K>` kernel must be an exact
//! copy of the report/stats the component returns — no field missing,
//! none double-counted.

use rip_bvh::{Bvh, StacklessKernel, TraversalKind, WhileWhileKernel};
use rip_core::{Predicted, PredictorConfig};
use rip_gpusim::{GpuConfig, Simulator};
use rip_obs::{ClockMode, Obs};
use rip_testkit::gen;
use rip_testkit::obs::{prediction_registry_mismatches, report_registry_mismatches};
use std::sync::Arc;

fn test_scene() -> (Vec<rip_math::Triangle>, Bvh) {
    let tris = gen::SceneRecipe::Clustered.triangles(600, 0xA11CE);
    let bvh = Bvh::build(&tris);
    (tris, bvh)
}

#[test]
fn sim_report_mirrors_into_registry_exactly() {
    let (tris, bvh) = test_scene();
    let rays = gen::hitting_rays(&tris, 512, 7);

    for config in [GpuConfig::baseline(), GpuConfig::with_predictor()] {
        let obs = Arc::new(Obs::new(ClockMode::Logical));
        let report = Simulator::new(config)
            .with_obs(Arc::clone(&obs))
            .run(&bvh, &rays);
        assert!(report.completed_rays > 0, "simulation did no work");
        let mismatches = report_registry_mismatches(&report, &obs);
        assert!(
            mismatches.is_empty(),
            "registry is not a faithful mirror of the report:\n{}",
            mismatches.join("\n")
        );
    }
}

#[test]
fn sim_report_mirror_accumulates_across_runs() {
    let (tris, bvh) = test_scene();
    let rays = gen::hitting_rays(&tris, 256, 11);
    let obs = Arc::new(Obs::new(ClockMode::Logical));
    let sim = Simulator::new(GpuConfig::with_predictor()).with_obs(Arc::clone(&obs));
    let a = sim.run(&bvh, &rays);
    let b = sim.run(&bvh, &rays);
    assert_eq!(
        obs.get("gpusim.rays.completed"),
        a.completed_rays + b.completed_rays,
        "two runs must mirror the sum of both reports"
    );
    assert_eq!(obs.get("gpusim.cycles"), a.cycles + b.cycles);
}

#[test]
fn predicted_kernel_mirrors_prediction_stats_exactly() {
    let (tris, bvh) = test_scene();
    let rays = gen::hitting_rays(&tris, 200, 3);
    let obs = Arc::new(Obs::new(ClockMode::Logical));
    let config = PredictorConfig {
        update_delay: 0,
        ..PredictorConfig::paper_default()
    };
    let mut kernel =
        Predicted::new(&bvh, config, WhileWhileKernel::new(&bvh)).with_obs(Arc::clone(&obs));

    // Two passes so the second verifies predictions made by the first;
    // check the mirror after every single trace, not just at the end.
    for _ in 0..2 {
        for ray in &rays {
            kernel.trace_detailed(ray, TraversalKind::AnyHit);
            let mismatches = prediction_registry_mismatches(&kernel.predictor().stats(), &obs);
            assert!(
                mismatches.is_empty(),
                "registry drifted from PredictionStats:\n{}",
                mismatches.join("\n")
            );
        }
    }
    let stats = kernel.predictor().stats();
    assert!(
        stats.rays > 0 && stats.verified > 0,
        "predictor never engaged"
    );
}

#[test]
fn predicted_mirror_rebaselines_after_stat_reset() {
    let (tris, bvh) = test_scene();
    let rays = gen::hitting_rays(&tris, 64, 5);
    let obs = Arc::new(Obs::new(ClockMode::Logical));
    let config = PredictorConfig {
        update_delay: 0,
        ..PredictorConfig::paper_default()
    };
    let mut kernel =
        Predicted::new(&bvh, config, StacklessKernel::new(&bvh)).with_obs(Arc::clone(&obs));
    for ray in &rays {
        kernel.trace_detailed(ray, TraversalKind::AnyHit);
    }
    let before_reset = obs.get("predictor.rays");
    assert_eq!(before_reset, rays.len() as u64);

    // A caller resetting stats must re-baseline the mirror, not panic
    // or double-count: the registry keeps its history and grows by the
    // post-reset deltas. The single trace that spans the reset is
    // swallowed (its saturating delta is 0, after which the baseline
    // snaps to the new stats), so exactly rays.len() - 1 accrue.
    *kernel.predictor_mut().stats_mut() = rip_core::PredictionStats::default();
    for ray in &rays {
        kernel.trace_detailed(ray, TraversalKind::AnyHit);
    }
    assert_eq!(
        obs.get("predictor.rays"),
        before_reset + rays.len() as u64 - 1
    );
    let mismatches = prediction_registry_mismatches(&kernel.predictor().stats(), &obs);
    assert!(
        !mismatches.is_empty(),
        "after a reset the registry intentionally retains pre-reset history"
    );
}
