//! Predictor invariants over generated workloads: transparency, the
//! oracle ladder, and Equation 1 accounting.

use rip_bvh::Bvh;
use rip_core::{FunctionalSim, OracleMode, PredictorConfig, SimOptions};
use rip_testkit::gen::{self, SceneRecipe, ALL_RECIPES};
use rip_testkit::invariants;

fn workload(recipe: SceneRecipe, seed: u64) -> (Bvh, Vec<rip_math::Ray>) {
    let tris = recipe.triangles(150, seed);
    let bvh = Bvh::build(&tris);
    let mut rays = gen::hitting_rays(&tris, 150, seed);
    rays.extend(gen::ray_batch(&bvh.bounds(), 100, seed));
    (bvh, rays)
}

/// An eagerly-predicting configuration (no training delay) — the hardest
/// setting for transparency, since almost every ray goes through the
/// prediction path.
fn eager() -> PredictorConfig {
    PredictorConfig {
        update_delay: 0,
        ..PredictorConfig::paper_default()
    }
}

#[test]
fn occlusion_answers_identical_with_and_without_predictor() {
    for recipe in ALL_RECIPES {
        let (bvh, rays) = workload(recipe, 21);
        invariants::assert_occlusion_transparent(&bvh, &rays, eager());
    }
}

#[test]
fn closest_hits_identical_with_and_without_predictor() {
    for recipe in ALL_RECIPES {
        let (bvh, rays) = workload(recipe, 22);
        invariants::assert_closest_transparent(&bvh, &rays, eager());
    }
}

#[test]
fn transparency_holds_across_go_up_levels() {
    let (bvh, rays) = workload(SceneRecipe::Walls, 23);
    for go_up_level in 0..=5 {
        let config = PredictorConfig {
            go_up_level,
            ..eager()
        };
        invariants::assert_occlusion_transparent(&bvh, &rays, config);
        invariants::assert_closest_transparent(&bvh, &rays, config);
    }
}

#[test]
fn oracle_ladder_upper_bounds_real_predictor() {
    let (bvh, rays) = workload(SceneRecipe::Clustered, 24);
    let ladder = invariants::oracle_ladder(&bvh, &rays, PredictorConfig::paper_default());
    invariants::assert_oracle_ladder_bounds(&ladder, 0.02);
}

#[test]
fn oracles_preserve_answers_too() {
    // Idealized lookups change *cost*, never *answers*.
    let (bvh, rays) = workload(SceneRecipe::Grid, 25);
    for oracle in [
        OracleMode::Lookup,
        OracleMode::UnboundedTraining,
        OracleMode::ImmediateUpdates,
    ] {
        invariants::assert_occlusion_transparent(&bvh, &rays, eager().with_oracle(oracle));
    }
}

#[test]
fn eq1_accounting_balances_on_every_recipe() {
    for recipe in ALL_RECIPES {
        let (bvh, rays) = workload(recipe, 26);
        let report = FunctionalSim::new(eager(), SimOptions::default()).run(&bvh, &rays);
        invariants::assert_report_balances(&report);
    }
}

#[test]
fn eq1_accounting_balances_for_closest_hit_workloads() {
    let (bvh, rays) = workload(SceneRecipe::Soup, 27);
    let report = FunctionalSim::new(eager(), SimOptions::default()).run_closest(&bvh, &rays);
    invariants::assert_report_balances(&report);
}

#[test]
fn predictor_never_reports_spurious_savings_on_all_miss_workloads() {
    // Rays far outside the scene: no hits, so no training, no predictions,
    // and with-predictor cost must equal the baseline exactly.
    let tris = SceneRecipe::Soup.triangles(100, 28);
    let bvh = Bvh::build(&tris);
    let rays: Vec<rip_math::Ray> = (0..100)
        .map(|i| {
            rip_math::Ray::new(
                rip_math::Vec3::new(100.0 + i as f32, 50.0, 0.0),
                rip_math::Vec3::Y,
            )
        })
        .collect();
    let report = FunctionalSim::new(eager(), SimOptions::default()).run(&bvh, &rays);
    assert_eq!(report.prediction.hits, 0);
    assert_eq!(report.prediction.predicted, 0);
    assert_eq!(
        report.with_predictor.node_fetches(),
        report.baseline.node_fetches(),
        "an untrained predictor must cost exactly the baseline"
    );
    invariants::assert_report_balances(&report);
}

#[test]
fn multi_predictor_configurations_stay_transparent() {
    let (bvh, rays) = workload(SceneRecipe::Soup, 29);
    for num_predictors in [1, 2, 4] {
        let sim = FunctionalSim::new(
            eager(),
            SimOptions {
                num_predictors,
                ..SimOptions::default()
            },
        );
        let report = sim.run(&bvh, &rays);
        invariants::assert_report_balances(&report);
        // Hit counts are a pure function of geometry, not of the predictor
        // sharding: every ray's answer is checked against plain traversal.
        let expected_hits = rays
            .iter()
            .filter(|r| {
                bvh.intersect(r, rip_bvh::TraversalKind::AnyHit)
                    .hit
                    .is_some()
            })
            .count() as u64;
        assert_eq!(report.prediction.hits, expected_hits);
    }
}
