//! Property suite for the compressed wide-node quantization frame.
//!
//! The 4-wide node stores child slabs as 8-bit offsets from a per-node
//! [`QuantFrame`]; traversal correctness rests on one promise: decoding an
//! encoded box yields a **superset** of the original (conservative
//! rounding), so a quantized slab test can produce false positives but
//! never a false negative. These properties pin that promise — and its
//! ray-level corollary — over adversarial extents: degenerate points, flat
//! boxes, mixed huge/tiny spans, and denormal-sized extents.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rip_bvh::QuantFrame;
use rip_math::{sampling, Aabb, Ray, Vec3};

/// The adversarial box families the frame must survive.
#[derive(Clone, Copy, Debug)]
enum BoxShape {
    /// Ordinary finite box with independent extents.
    Plain,
    /// Zero extent on one axis (flat quads, grid leaves).
    Flat,
    /// Zero extent on every axis (a point).
    Point,
    /// One axis spanning ~1e30 alongside a unit axis.
    Huge,
    /// Extents down at the denormal/underflow edge of `f32`.
    Denormal,
}

const SHAPES: [BoxShape; 5] = [
    BoxShape::Plain,
    BoxShape::Flat,
    BoxShape::Point,
    BoxShape::Huge,
    BoxShape::Denormal,
];

fn shaped_box(shape: BoxShape, seed: u64) -> Aabb {
    let mut r = SmallRng::seed_from_u64(seed ^ 0xB0C5);
    let center = Vec3::new(
        r.gen_range(-1.0e3..1.0e3),
        r.gen_range(-1.0e3..1.0e3),
        r.gen_range(-1.0e3..1.0e3),
    );
    let mut half = Vec3::new(
        r.gen_range(1e-3..50.0),
        r.gen_range(1e-3..50.0),
        r.gen_range(1e-3..50.0),
    );
    match shape {
        BoxShape::Plain => {}
        BoxShape::Flat => {
            let axis = r.gen_range(0..3usize);
            match axis {
                0 => half.x = 0.0,
                1 => half.y = 0.0,
                _ => half.z = 0.0,
            }
        }
        BoxShape::Point => half = Vec3::ZERO,
        BoxShape::Huge => half.x = r.gen_range(1.0e28..1.0e30),
        BoxShape::Denormal => {
            half = Vec3::splat(f32::from_bits(r.gen_range(1..1 << 20)));
        }
    }
    Aabb::new(center - half, center + half)
}

/// A child box nested somewhere inside `parent`, sharing faces sometimes
/// (the collapse encodes children against the slot union's frame).
fn nested_box(parent: &Aabb, seed: u64) -> Aabb {
    let mut r = SmallRng::seed_from_u64(seed ^ 0x11E57);
    let d = parent.diagonal();
    let pick = |lo: f32, span: f32, r: &mut SmallRng| {
        let a = lo + span * r.gen_range(0.0..0.6);
        let b = lo + span * r.gen_range(0.4..1.0f32);
        (a.min(b), a.max(b))
    };
    let (x0, x1) = pick(parent.min.x, d.x, &mut r);
    let (y0, y1) = pick(parent.min.y, d.y, &mut r);
    let (z0, z1) = pick(parent.min.z, d.z, &mut r);
    Aabb::new(Vec3::new(x0, y0, z0), Vec3::new(x1, y1, z1))
}

fn decode_roundtrip(frame: &QuantFrame, b: &Aabb) -> Aabb {
    let (qlo, qhi) = frame.encode_box(b);
    frame.decode_box(qlo, qhi)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(b)) ⊇ b for every shape, both when the frame is
    /// fitted to the box itself and when it is fitted to a larger union
    /// (the situation inside a real wide node).
    #[test]
    fn quantized_boxes_conservatively_contain_sources(
        seed in 0u64..20_000,
        shape_ix in 0usize..SHAPES.len(),
    ) {
        let shape = SHAPES[shape_ix];
        let outer = shaped_box(shape, seed);
        let inner = nested_box(&outer, seed);
        for (frame_src, b) in [(&outer, &outer), (&outer, &inner), (&inner, &inner)] {
            let frame = QuantFrame::for_bounds(frame_src);
            let decoded = decode_roundtrip(&frame, b);
            prop_assert!(
                decoded.contains_box(b),
                "{shape:?}: decoded {decoded:?} does not contain source {b:?} \
                 (frame over {frame_src:?})"
            );
        }
    }

    /// Empty boxes round-trip to the inverted sentinel and come back empty
    /// rather than materializing as a spurious slab.
    #[test]
    fn empty_boxes_stay_empty(seed in 0u64..20_000) {
        let frame = QuantFrame::for_bounds(&shaped_box(BoxShape::Plain, seed));
        let decoded = decode_roundtrip(&frame, &Aabb::empty());
        prop_assert!(decoded.is_empty(), "empty box decoded to {decoded:?}");
    }

    /// Ray-level corollary: any ray that hits the exact box also hits its
    /// quantized superset — quantization can only widen, never lose, a
    /// traversal candidate.
    #[test]
    fn rays_hitting_exact_box_hit_quantized_box(
        seed in 0u64..20_000,
        shape_ix in 0usize..SHAPES.len(),
    ) {
        let shape = SHAPES[shape_ix];
        let outer = shaped_box(shape, seed);
        let inner = nested_box(&outer, seed);
        let frame = QuantFrame::for_bounds(&outer);
        let decoded = decode_roundtrip(&frame, &inner);
        let mut r = SmallRng::seed_from_u64(seed ^ 0x7A75);
        let pad = inner.diagonal_length().max(1.0);
        for _ in 0..16 {
            let dir = sampling::uniform_sphere(r.gen(), r.gen());
            let target = inner.center()
                + inner.diagonal() * Vec3::new(
                    r.gen_range(-0.5..0.5),
                    r.gen_range(-0.5..0.5),
                    r.gen_range(-0.5..0.5),
                );
            let ray = Ray::new(target - dir * r.gen_range(0.5..3.0) * pad, dir);
            if inner.intersect(&ray).is_some() {
                prop_assert!(
                    decoded.intersect(&ray).is_some(),
                    "{shape:?}: ray {ray:?} hits exact {inner:?} but misses \
                     quantized {decoded:?}"
                );
            }
        }
    }
}

/// The frame's per-axis scale is always a normal power of two, so
/// dequantization is an exact multiply-add with no rounding surprises.
#[test]
fn frame_scales_are_powers_of_two() {
    for seed in 0..200u64 {
        for shape in SHAPES {
            let b = shaped_box(shape, seed);
            let frame = QuantFrame::for_bounds(&b);
            for axis in 0..3 {
                let s = frame.scale(axis);
                assert!(s.is_normal() && s > 0.0, "scale {s} not normal");
                assert_eq!(
                    s.to_bits() & 0x007F_FFFF,
                    0,
                    "scale {s} has mantissa bits set — not a power of two"
                );
            }
        }
    }
}
