//! Replay-vs-live differential suite for the trace-driven replay pipeline.
//!
//! The contract (DESIGN.md §12): capture-then-replay is an *optimization*,
//! never a model change. Every one of the 23 experiments must render the
//! exact same report text whether its functional and timing runs traverse
//! the BVH live, record while traversing (`--capture-trace`), or replay
//! recorded RIPT streams (`--replay`) — at **any** worker-thread count.
//! The `gpusim.*` counter registry mirrored from the timing simulator must
//! likewise diff to zero between a live and a replayed run, which is what
//! makes the replay path auditable rather than merely plausible.

use rip_bench::{experiments, Context, SceneSelection, TraceMode};
use rip_obs::{ClockMode, Obs};
use rip_scene::SceneScale;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scene keeps the debug-mode suite affordable; every experiment and
/// every sweep configuration still runs.
const SCENES: SceneSelection = SceneSelection::Subset(1);

fn context(mode: TraceMode, jobs: usize) -> (Context, Arc<Obs>) {
    let obs = Arc::new(Obs::new(ClockMode::Logical));
    let mut ctx = Context::scoped(SceneScale::Tiny, SCENES, jobs, Arc::clone(&obs));
    ctx.set_trace_mode(mode);
    (ctx, obs)
}

/// The simulator-owned slice of the registry. Capture/replay bookkeeping
/// lives in `exec.trace.*` / `bench.trace.*` by design, precisely so this
/// slice can be required to match exactly between modes.
fn gpusim_counters(obs: &Obs) -> BTreeMap<String, u64> {
    obs.registry()
        .snapshot()
        .into_iter()
        .filter(|(path, _)| path.starts_with("gpusim."))
        .collect()
}

/// Runs all 23 experiments under `mode` at `jobs` worker threads and
/// returns (per-experiment report texts, mirrored `gpusim.*` registry,
/// trace-store counters).
fn run_all(mode: TraceMode, jobs: usize) -> (Vec<String>, BTreeMap<String, u64>, Arc<Obs>) {
    let (ctx, obs) = context(mode, jobs);
    let reports = experiments::run_all(&ctx);
    assert_eq!(reports.len(), experiments::ALL.len());
    let texts = reports.iter().map(|r| r.to_string()).collect();
    let counters = gpusim_counters(&obs);
    (texts, counters, obs)
}

fn diff_reports(label: &str, live: &[String], other: &[String]) {
    for (((name, _), a), b) in experiments::ALL.iter().zip(live).zip(other) {
        assert_eq!(
            a, b,
            "{name}: report text diverged between live and {label}"
        );
    }
}

fn diff_registries(label: &str, live: &BTreeMap<String, u64>, other: &BTreeMap<String, u64>) {
    let mismatches: Vec<String> = live
        .iter()
        .filter(|(path, value)| other.get(*path) != Some(value))
        .map(|(path, value)| {
            format!(
                "{path}: live {value} vs {label} {:?}",
                other.get(path.as_str())
            )
        })
        .chain(
            other
                .keys()
                .filter(|path| !live.contains_key(*path))
                .map(|path| format!("{path}: only present under {label}")),
        )
        .collect();
    assert!(
        mismatches.is_empty(),
        "gpusim.* registry diverged between live and {label}:\n{}",
        mismatches.join("\n")
    );
    assert!(
        !live.is_empty(),
        "no gpusim.* counters were mirrored — the differential would be vacuous"
    );
}

/// The tentpole differential: all 23 experiments, live versus
/// capture→replay, report-for-report and counter-for-counter, with the
/// replay side exercised at 1, 4 and 8 worker threads.
#[test]
fn all_experiments_replay_byte_identical_to_live_at_every_job_count() {
    let (live_texts, live_counters, _live_obs) = run_all(TraceMode::Off, 2);

    for jobs in [1usize, 4, 8] {
        let (texts, counters, obs) = run_all(TraceMode::Replay, jobs);
        let label = format!("replay at --jobs {jobs}");
        diff_reports(&label, &live_texts, &texts);
        diff_registries(&label, &live_counters, &counters);
        assert_eq!(
            obs.get("bench.trace.replay_fallback"),
            0,
            "{label}: every replay-capable run must actually replay"
        );
        assert!(
            obs.get("exec.trace.capture") > 0,
            "{label}: replay mode captures each workload exactly once on miss"
        );
        assert!(
            obs.get("exec.trace.memory_hit") > 0,
            "{label}: sweep configurations after the first must hit the store"
        );
    }
}

/// Capture mode is a live run that additionally records: its reports and
/// mirrored registry must match the plain live run exactly.
#[test]
fn capture_mode_output_is_byte_identical_to_live() {
    let (live_texts, live_counters, _) = run_all(TraceMode::Off, 2);
    let (texts, counters, obs) = run_all(TraceMode::Capture, 2);
    diff_reports("capture", &live_texts, &texts);
    diff_registries("capture", &live_counters, &counters);
    assert!(
        obs.get("exec.trace.capture") > 0,
        "capture mode must record traces"
    );
}

/// The §6.2.5 determinism matrix: the per-SM sweep report is one byte
/// stream across {live, capture, replay} × {--jobs 1, 4, 8}, and the
/// normalized RIPT trace of its workload is one byte stream at every
/// capture thread count. Nine report cells plus three capture cells, all
/// pinned to a single reference.
#[test]
fn sec625_report_and_normalized_trace_are_identical_across_the_matrix() {
    let sec625 = |mode: TraceMode, jobs: usize| {
        let (ctx, _) = context(mode, jobs);
        let (_, run) = experiments::ALL
            .iter()
            .find(|(name, _)| *name == "sec625_sm_sweep")
            .expect("sec625_sm_sweep is one of the 23 experiments");
        run(&ctx).to_string()
    };
    let reference = sec625(TraceMode::Off, 1);
    for jobs in [1usize, 4, 8] {
        for (label, mode) in [
            ("live", TraceMode::Off),
            ("capture", TraceMode::Capture),
            ("replay", TraceMode::Replay),
        ] {
            assert_eq!(
                reference,
                sec625(mode, jobs),
                "sec625 report diverged under {label} at --jobs {jobs}"
            );
        }
    }

    // The recorded trace itself: capturing the sec625 workload sharded
    // over 1, 4 and 8 threads must produce the same RIPT container bytes.
    let (ctx, _) = context(TraceMode::Off, 1);
    let case = ctx.build_case(ctx.scene_ids()[0]);
    let batch = case.ao_batch();
    let capture_bytes = |threads: usize| {
        rip_exec::TraceStore::in_memory_only()
            .with_parallelism(threads)
            .get_or_capture(
                "sec625_matrix",
                &case.bvh,
                &batch,
                rip_bvh::TraversalKind::AnyHit,
            )
            .encode()
    };
    let one = capture_bytes(1);
    assert!(!one.is_empty());
    for threads in [4usize, 8] {
        assert_eq!(
            one,
            capture_bytes(threads),
            "normalized RIPT bytes diverged at capture parallelism {threads}"
        );
    }
}
