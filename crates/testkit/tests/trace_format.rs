//! RIPT trace-format gate: corruption never panics, mapping never
//! changes bytes, stale traces never replay.
//!
//! The replay pipeline (DESIGN.md §12) is only trustworthy if the trace
//! artifacts feeding it are. Three layers of assurance, mirroring the
//! RIPA suite in `artifact_format.rs`:
//!
//! 1. **Corruption matrix** — every [`faultinject`] damage mode
//!    (`bit_flip` across header, section table and payload streams;
//!    `header_bomb` on the section count; `truncate` at two cut points)
//!    applied to an on-disk `.ript` trace must end in a quarantine +
//!    recapture through the real [`TraceStore`] — never a panic, never a
//!    corrupt trace served as a hit — and the recaptured artifact must
//!    be loadable again.
//! 2. **Stale-workload rejection** — a trace whose label collides with a
//!    different workload (changed rays, changed scene, wrong traversal
//!    kind on disk) is a `KeyMismatch`, quarantined identically.
//! 3. **Round-trip properties** — capture → encode → [`MappedArtifact`]
//!    → `decode_shared` → re-encode reproduces the original byte stream
//!    exactly over every generator recipe and both traversal kinds, and
//!    the decoded set still reconstructs each ray's live traversal
//!    result. CI runs this suite with the `mmap` feature on and off, so
//!    both byte backends are pinned to the same stream.

use proptest::prelude::*;
use rip_bvh::ript::RayTraceSet;
use rip_bvh::{Bvh, RayBatch, TraversalKind};
use rip_exec::{MappedArtifact, TraceStore};
use rip_testkit::{faultinject, gen};
use std::path::{Path, PathBuf};

fn backend_name() -> &'static str {
    if cfg!(feature = "mmap") {
        "mmap"
    } else {
        "owned"
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rip-trace-format-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The fixed workload of the corruption matrix: one generator scene and
/// a batch mixing hitting and missing rays, big enough that every RIPT
/// section (meta, records, node stream, leaf counts) is non-trivial.
fn workload() -> (Bvh, RayBatch) {
    let tris = gen::ALL_RECIPES[0].triangles(96, 7);
    let bvh = Bvh::build(&tris);
    let mut batch = RayBatch::with_capacity(48);
    for ray in gen::hitting_rays(&tris, 24, 11) {
        batch.push(ray);
    }
    for ray in gen::ray_batch(&bvh.bounds(), 24, 13) {
        batch.push(ray);
    }
    (bvh, batch)
}

fn batch_from(rays: Vec<rip_math::Ray>) -> RayBatch {
    let mut batch = RayBatch::with_capacity(rays.len());
    for ray in rays {
        batch.push(ray);
    }
    batch
}

// ---------------------------------------------------------------------
// 1. Corruption matrix
// ---------------------------------------------------------------------

/// One corruption mode: a label plus the damage applied to a trace file
/// of known length.
type Corruption = (&'static str, fn(&Path, usize));

/// Offsets follow the RIPA v2 layout: byte 1 is inside the magic, 5 the
/// container version, 40 the second section-table entry, `len/2` lands
/// in the record/node payload streams. Every payload byte is covered by
/// a striped per-section checksum, so any single flip must be detected.
const CORRUPTIONS: [Corruption; 7] = [
    ("flip-magic", |p, _| faultinject::bit_flip(p, 1).unwrap()),
    ("flip-version", |p, _| faultinject::bit_flip(p, 5).unwrap()),
    ("flip-table", |p, _| faultinject::bit_flip(p, 40).unwrap()),
    ("flip-payload", |p, len| {
        faultinject::bit_flip(p, len / 2).unwrap()
    }),
    ("bomb-sections", |p, _| faultinject::header_bomb(p).unwrap()),
    ("trunc-table", |p, _| faultinject::truncate(p, 48).unwrap()),
    ("trunc-payload", |p, len| {
        faultinject::truncate(p, len - len / 4).unwrap()
    }),
];

/// Captures the workload into `dir` through a throwaway store and
/// returns the single `.ript` artifact it persisted.
fn seed_trace(dir: &Path, bvh: &Bvh, batch: &RayBatch, kind: TraversalKind) -> PathBuf {
    let store = TraceStore::with_dir(Some(dir.to_path_buf()));
    store.get_or_capture("matrix", bvh, batch, kind);
    assert_eq!(store.stats().captures, 1, "seed run must capture");
    let paths = faultinject::artifacts_with_ext(dir, "ript");
    assert_eq!(paths.len(), 1, "expected exactly one trace artifact");
    paths[0].clone()
}

/// Every damage mode must surface as quarantine + recapture through the
/// real [`TraceStore`]: no panic, no corrupt hit, and the store must be
/// healthy again afterwards (a third run disk-hits the re-persisted
/// artifact).
#[test]
fn corruption_matrix_always_quarantines_and_recaptures() {
    let (bvh, batch) = workload();
    let reference = RayTraceSet::capture(&bvh, &batch, TraversalKind::AnyHit);
    for (label, damage) in CORRUPTIONS {
        let dir = temp_store(label);
        let path = seed_trace(&dir, &bvh, &batch, TraversalKind::AnyHit);
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        damage(&path, len);

        let store = TraceStore::with_dir(Some(dir.clone()));
        let set = store.get_or_capture("matrix", &bvh, &batch, TraversalKind::AnyHit);
        let stats = store.stats();
        assert_eq!(
            stats.disk_hits, 0,
            "{label}: a damaged trace was served as a hit"
        );
        assert_eq!(stats.captures, 1, "{label}: expected a clean recapture");
        assert!(
            stats.quarantines >= 1,
            "{label}: damaged trace must be quarantined"
        );
        let quarantined = faultinject::artifacts_with_ext(&dir, "quarantine");
        assert_eq!(
            quarantined.len(),
            1,
            "{label}: the rejected file must be preserved as .quarantine"
        );

        // The served set is the real workload, not a salvage of the
        // damaged bytes: it attaches and re-encodes to the reference
        // capture exactly.
        set.attach(&bvh, &batch).unwrap();
        assert_eq!(
            set.encode(),
            reference.encode(),
            "{label}: recaptured trace diverged from a clean capture"
        );

        // Recovery is durable: the recapture re-persisted a valid
        // artifact, so a fresh store now loads it from disk.
        let healed = TraceStore::with_dir(Some(dir.clone()));
        healed.get_or_capture("matrix", &bvh, &batch, TraversalKind::AnyHit);
        assert_eq!(
            healed.stats().disk_hits,
            1,
            "{label}: recapture must leave a loadable artifact behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Every single-byte flip over the whole artifact — header, table,
/// record stream, node stream, leaf counts — is rejected at decode.
/// This is the exhaustive version of the matrix's spot checks, feasible
/// because the container checksums are striped per section.
#[test]
fn every_single_byte_flip_in_a_trace_is_rejected() {
    let (bvh, batch) = workload();
    let bytes = RayTraceSet::capture(&bvh, &batch, TraversalKind::ClosestHit).encode();
    for offset in 0..bytes.len() {
        let mut copy = bytes.clone();
        copy[offset] ^= 0x20;
        let verdict = RayTraceSet::decode(&copy).and_then(|set| {
            set.attach(&bvh, &batch)?;
            Ok(())
        });
        assert!(
            verdict.is_err(),
            "flip at byte {offset}/{} decoded and attached cleanly",
            bytes.len()
        );
    }
}

// ---------------------------------------------------------------------
// 2. Stale-workload rejection
// ---------------------------------------------------------------------

/// A label collision with a different workload must never replay: a
/// changed ray batch is a digest mismatch, quarantined and recaptured
/// like corruption, and the traversal kind is part of the on-disk name
/// so the other kind simply misses.
#[test]
fn stale_workloads_quarantine_instead_of_replaying() {
    let (bvh, batch) = workload();
    let dir = temp_store("stale");
    seed_trace(&dir, &bvh, &batch, TraversalKind::AnyHit);

    // Same label, same scene, different rays: KeyMismatch → quarantine.
    let other = batch_from(gen::ray_batch(&bvh.bounds(), batch.len(), 99));
    let store = TraceStore::with_dir(Some(dir.clone()));
    let set = store.get_or_capture("matrix", &bvh, &other, TraversalKind::AnyHit);
    let stats = store.stats();
    assert_eq!(stats.disk_hits, 0, "stale trace must not replay");
    assert_eq!(stats.captures, 1);
    assert!(stats.quarantines >= 1, "stale trace must be quarantined");
    set.attach(&bvh, &other).unwrap();

    // The other traversal kind was never captured: a plain miss, no
    // quarantine, no false hit against the any-hit artifact.
    let dir2 = temp_store("stale-kind");
    seed_trace(&dir2, &bvh, &batch, TraversalKind::AnyHit);
    let store = TraceStore::with_dir(Some(dir2.clone()));
    store.get_or_capture("matrix", &bvh, &batch, TraversalKind::ClosestHit);
    let stats = store.stats();
    assert_eq!(stats.disk_hits, 0);
    assert_eq!(stats.captures, 1);
    assert_eq!(stats.quarantines, 0, "a kind miss is not a corruption");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

// ---------------------------------------------------------------------
// 3. Round-trip properties
// ---------------------------------------------------------------------

/// Writes `bytes` to a scratch file, opens it through [`MappedArtifact`]
/// (exercising whichever byte backend this build compiled in) and hands
/// the mapped bytes to `check`; used to prove decode borrows mapped
/// pages as faithfully as owned buffers.
fn through_map(tag: &str, bytes: &[u8], check: impl Fn(rip_pod::Bytes)) {
    let path =
        std::env::temp_dir().join(format!("rip-trace-roundtrip-{tag}-{}", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    let map = MappedArtifact::open(&path).unwrap();
    check(map.bytes());
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trace artifacts survive capture → encode → map → decode →
    /// re-encode bit-exactly for every generator recipe, a spread of
    /// batch shapes and both traversal kinds — and the decoded set
    /// still reconstructs every ray's live traversal outcome.
    #[test]
    fn trace_roundtrip_is_bit_exact(
        recipe_ix in 0usize..gen::ALL_RECIPES.len(),
        n in 8usize..96,
        rays in 4usize..40,
        seed in 0u64..1_000,
        closest in any::<bool>(),
    ) {
        let kind = if closest {
            TraversalKind::ClosestHit
        } else {
            TraversalKind::AnyHit
        };
        let tris = gen::ALL_RECIPES[recipe_ix].triangles(n, seed);
        let bvh = Bvh::build(&tris);
        let mut all = gen::hitting_rays(&tris, rays / 2, seed ^ 0xa5);
        all.extend(gen::ray_batch(&bvh.bounds(), rays - all.len(), seed ^ 0x5a));
        let batch = batch_from(all);

        let set = RayTraceSet::capture(&bvh, &batch, kind);
        let bytes = set.encode();
        let tag = format!("{recipe_ix}-{n}-{rays}-{seed}-{closest}");
        through_map(&tag, &bytes, |mapped| {
            let decoded = RayTraceSet::decode_shared(mapped).unwrap();
            assert!(decoded.is_shared(), "decode must borrow, not copy");
            decoded.attach(&bvh, &batch).unwrap();
            assert_eq!(decoded.kind(), kind);
            assert_eq!(
                decoded.encode(),
                bytes,
                "encode → map ({}) → decode → encode changed bytes",
                backend_name()
            );
            for i in 0..batch.len() {
                assert_eq!(
                    decoded.full_result(i),
                    set.full_result(i),
                    "ray {i} replays differently after the disk round trip"
                );
            }
        });
    }

    /// Sharded capture feeds the same round trip: whatever thread count
    /// recorded the trace, the persisted bytes are the sequential ones.
    #[test]
    fn parallel_capture_roundtrips_to_sequential_bytes(
        recipe_ix in 0usize..gen::ALL_RECIPES.len(),
        threads in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let tris = gen::ALL_RECIPES[recipe_ix].triangles(64, seed);
        let bvh = Bvh::build(&tris);
        let batch = batch_from(gen::hitting_rays(&tris, 24, seed));
        let sequential = RayTraceSet::capture(&bvh, &batch, TraversalKind::AnyHit).encode();
        let sharded =
            RayTraceSet::capture_parallel(&bvh, &batch, TraversalKind::AnyHit, threads).encode();
        prop_assert_eq!(&sharded, &sequential);
        through_map(&format!("par-{recipe_ix}-{threads}-{seed}"), &sharded, |mapped| {
            let decoded = RayTraceSet::decode_shared(mapped).unwrap();
            assert_eq!(decoded.encode(), sequential);
        });
    }
}
