//! The trace-schema half of the observability contract: everything
//! `rip-obs` exports must be valid chrome://tracing JSONL — every line
//! a JSON object with `name`, `ph`, `ts` and `pid` — and the
//! `trace_check` CI binary enforces the same rule on real `--trace`
//! output.

use rip_obs::{ClockMode, Obs, TraceFileGuard};
use rip_testkit::obs::{normalize_trace, parse_json_line, validate_trace, JsonValue};
use std::sync::Arc;

/// Builds a representative trace: spans (ph X), instant events (ph i)
/// with string/numeric/wall-time args, and counter totals (ph C).
fn sample_trace() -> String {
    let obs = Obs::new(ClockMode::Logical);
    obs.trace().enable();
    obs.add("exec.cache.memory_hit", 3);
    obs.add("gpusim.cycles", 123_456);
    {
        let _span = obs
            .span("exec.unit", "fig12_speedup")
            .arg("runner", "run_all")
            .arg_u64("attempt", 1);
    }
    obs.event("exec.cache", "build")
        .arg("case", "sb_tiny \"quoted\" \\ and\tcontrol")
        .arg_u64("built_ms", 42)
        .emit();
    obs.export_trace_jsonl()
}

#[test]
fn exported_trace_satisfies_the_schema() {
    let jsonl = sample_trace();
    let count = validate_trace(&jsonl).expect("exported trace must validate");
    assert_eq!(count, 4, "span + event + 2 counters:\n{jsonl}");
}

#[test]
fn every_phase_carries_its_structural_fields() {
    let jsonl = sample_trace();
    let mut phases = Vec::new();
    for line in jsonl.lines() {
        let value = parse_json_line(line).unwrap();
        let JsonValue::Str(ph) = value.get("ph").unwrap() else {
            panic!("ph is not a string: {line}");
        };
        phases.push(ph.clone());
        match ph.as_str() {
            "X" => assert!(value.get("dur").is_some(), "span without dur: {line}"),
            "C" => {
                let args = value.get("args").unwrap();
                assert!(args.get("value").is_some(), "counter without value: {line}");
            }
            "i" => assert!(value.get("args").is_some(), "event without args: {line}"),
            other => panic!("unexpected phase {other:?}: {line}"),
        }
        assert!(value.get("cat").is_some(), "no cat: {line}");
        assert!(value.get("tid").is_some(), "no tid: {line}");
    }
    phases.sort_unstable();
    assert_eq!(phases, ["C", "C", "X", "i"]);
}

#[test]
fn escaped_strings_survive_a_parse_round_trip() {
    let jsonl = sample_trace();
    let build_line = jsonl
        .lines()
        .find(|l| l.contains("\"build\""))
        .expect("build event present");
    let value = parse_json_line(build_line).unwrap();
    assert_eq!(
        value.get("args").unwrap().get("case"),
        Some(&JsonValue::Str(
            "sb_tiny \"quoted\" \\ and\tcontrol".to_string()
        ))
    );
}

#[test]
fn trace_file_guard_output_validates_and_normalizes() {
    let path = std::env::temp_dir().join(format!("rip-trace-schema-{}.jsonl", std::process::id()));
    {
        let obs = Arc::new(Obs::new(ClockMode::Logical));
        let guard = TraceFileGuard::new(Arc::clone(&obs), &path);
        obs.add("exec.unit.completed", 2);
        obs.event("exec.runner", "unit_done")
            .arg("unit", "table4_energy")
            .arg_u64("elapsed_ms", 17)
            .emit();
        guard.flush();
    }
    let jsonl = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(validate_trace(&jsonl).unwrap() >= 2);

    // Normalization drops the wall-time arg but keeps the unit name.
    let normalized = normalize_trace(&jsonl).unwrap();
    assert!(normalized.contains("table4_energy"));
    assert!(!normalized.contains("elapsed_ms"));
    assert!(!normalized.contains("\"ts\""));
    assert!(!normalized.contains("\"tid\""));
}

#[test]
fn wall_and_logical_clock_traces_normalize_identically() {
    let run = |mode: ClockMode| {
        let obs = Obs::new(mode);
        obs.trace().enable();
        obs.add("exec.cache.build", 1);
        let _span = obs.span("exec.cache", "build").arg("case", "sp_tiny");
        drop(_span);
        obs.export_trace_jsonl()
    };
    let wall = run(ClockMode::Wall);
    let logical = run(ClockMode::Logical);
    assert_eq!(
        normalize_trace(&wall).unwrap(),
        normalize_trace(&logical).unwrap(),
        "clock mode must vanish under normalization"
    );
}
