//! SIMD differential layer: the vectorized wide kernel must be
//! bit-identical across lane backends.
//!
//! `rip-bvh` traverses the compressed 4-wide BVH either with explicit
//! SSE2 lanes (feature `simd`, forwarded here as `rip-testkit/simd`) or
//! with a portable scalar emulation. The contract is that the choice is
//! *unobservable*: same hit bits, same statistics, same serialized bytes.
//! CI runs this suite under both configurations; the committed digest
//! snapshots ([`HITS_SNAPSHOT`], [`SERIAL_SNAPSHOT`]) are what make the
//! comparison **cross**-config — both builds must reproduce the same
//! digests or one of them moved.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! RIP_UPDATE_SNAPSHOTS=1 cargo test -p rip-testkit --test wide_simd
//! ```
//! (then rerun with the other feature setting to confirm both agree).

use rip_bvh::{serial, simd, Bvh, RayBatch, TraversalKernel, TraversalKind, WideBvh, WideKernel};
use rip_core::{Predicted, PredictorConfig};
use rip_math::{Ray, Triangle};
use rip_testkit::{diff, gen};
use std::path::PathBuf;

/// Committed digest of the wide kernel's hits over the pinned workloads.
const HITS_SNAPSHOT: &str = "wide_simd_hits.snap";
/// Committed digest of the serialized wide BVHs for the same scenes.
const SERIAL_SNAPSHOT: &str = "wide_bvh_serial.snap";

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/snapshots"
    ))
    .join(name)
}

/// FNV-1a 64-bit — dependency-free, stable across platforms and configs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// The pinned workloads: every recipe, fixed seeds, mixed ray families.
fn workloads() -> Vec<(String, Vec<Triangle>, Vec<Ray>)> {
    gen::ALL_RECIPES
        .iter()
        .map(|recipe| {
            let tris = recipe.triangles(150, 7);
            let bounds = Bvh::build(&tris).bounds();
            let mut rays = gen::hitting_rays(&tris, 80, 7);
            rays.extend(gen::ray_batch(&bounds, 60, 7));
            rays.extend(gen::edge_rays(&tris, 20, 7));
            (recipe.name().to_string(), tris, rays)
        })
        .collect()
}

/// One digest line per (scene, query kind): hits *and* statistics of the
/// wide kernel's batch path folded through FNV-1a.
fn hits_digest() -> String {
    let mut out = String::new();
    for (name, tris, rays) in workloads() {
        let bvh = Bvh::build(&tris);
        let wide = WideBvh::from_binary(&bvh);
        let mut kernel = WideKernel::new(&wide, &bvh);
        let batch = RayBatch::from_rays(&rays);
        for kind in [TraversalKind::ClosestHit, TraversalKind::AnyHit] {
            let mut fnv = Fnv::new();
            for r in kernel.trace_batch(&batch, kind) {
                match r.hit {
                    Some(h) => {
                        fnv.write_u32(1);
                        fnv.write_u32(h.tri_index);
                        fnv.write_u32(h.leaf.index());
                        fnv.write_u32(h.t.to_bits());
                    }
                    None => fnv.write_u32(0),
                }
                fnv.write_u64(r.stats.interior_fetches);
                fnv.write_u64(r.stats.leaf_fetches);
                fnv.write_u64(r.stats.box_tests);
                fnv.write_u64(r.stats.tri_tests);
                fnv.write_u64(r.stats.stack_spills);
            }
            out.push_str(&format!("{name} {kind:?} {:016x}\n", fnv.0));
        }
    }
    out
}

/// One digest line per scene: the full serialized wide-BVH byte stream.
fn serial_digest() -> String {
    let mut out = String::new();
    for (name, tris, _) in workloads() {
        let wide = WideBvh::from_binary(&Bvh::build(&tris));
        let bytes = serial::encode_wide(&wide);
        let mut fnv = Fnv::new();
        fnv.write(&bytes);
        out.push_str(&format!("{name} {} bytes {:016x}\n", bytes.len(), fnv.0));
    }
    out
}

fn check_snapshot(name: &str, actual: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("RIP_UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); regenerate with \
             RIP_UPDATE_SNAPSHOTS=1 cargo test -p rip-testkit --test wide_simd",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "[backend {}] digest diverged from committed snapshot {} — the \
         {} build no longer reproduces the pinned bits",
        simd::backend_name(),
        path.display(),
        simd::backend_name(),
    );
}

/// The wide kernel agrees bit-for-bit with brute force and the scalar
/// kernels on every pinned workload, whichever backend is compiled in.
#[test]
fn wide_kernel_agrees_with_references_under_this_backend() {
    for (name, tris, rays) in workloads() {
        let label = format!("{name}/{}", simd::backend_name());
        diff::assert_kernels_agree(&label, &tris, &rays);
        diff::assert_batch_matches_scalar(&label, &tris, &rays);
    }
}

/// Cross-config bit identity: the committed hit digest must reproduce
/// exactly under whichever backend this build compiled in.
#[test]
fn wide_hits_match_committed_digest() {
    check_snapshot(HITS_SNAPSHOT, &hits_digest());
}

/// Serialized wide BVHs are byte-stable: re-encoding a decoded tree is
/// identical, and the bytes match the committed digest in both configs.
#[test]
fn wide_serialization_is_byte_stable() {
    for (name, tris, _) in workloads() {
        let wide = WideBvh::from_binary(&Bvh::build(&tris));
        let bytes = serial::encode_wide(&wide);
        let decoded = serial::decode_wide(&bytes).expect("round-trip decode");
        assert_eq!(
            bytes,
            serial::encode_wide(&decoded),
            "{name}: save → load → save changed bytes"
        );
    }
    check_snapshot(SERIAL_SNAPSHOT, &serial_digest());
}

/// `Predicted<WideKernel>` transparency holds under the compiled backend:
/// wrapping the SIMD wide kernel in the §3 predictor changes no answer,
/// cold or warm.
#[test]
fn predicted_wide_kernel_stays_transparent() {
    let config = PredictorConfig {
        update_delay: 0,
        ..PredictorConfig::paper_default()
    };
    for (name, tris, rays) in workloads() {
        let bvh = Bvh::build(&tris);
        let wide = WideBvh::from_binary(&bvh);
        let batch = RayBatch::from_rays(&rays);
        let occlusion = WideKernel::new(&wide, &bvh).any_hit_batch(&batch);
        let closest = WideKernel::new(&wide, &bvh).closest_hit_batch(&batch);
        let mut predicted = Predicted::new(&bvh, config, WideKernel::new(&wide, &bvh));
        for pass in 0..2 {
            let occ = predicted.any_hit_batch(&batch);
            let clo = predicted.closest_hit_batch(&batch);
            for i in 0..batch.len() {
                assert_eq!(
                    occ[i].hit.is_some(),
                    occlusion[i].hit.is_some(),
                    "{name} [{}] pass {pass} ray {i}: occlusion answer changed",
                    simd::backend_name()
                );
                assert_eq!(
                    clo[i].hit.map(|h| (h.tri_index, h.t.to_bits())),
                    closest[i].hit.map(|h| (h.tri_index, h.t.to_bits())),
                    "{name} [{}] pass {pass} ray {i}: closest hit drifted",
                    simd::backend_name()
                );
            }
        }
    }
}
