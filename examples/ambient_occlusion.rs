//! Render an ambient-occlusion image with and without the predictor and
//! verify both produce identical visibility — the predictor is exact, it
//! only reorders work.
//!
//! Writes `ao_<scene>.pgm` to the working directory.
//!
//! Run with: `cargo run --release --example ambient_occlusion [-- <scene-code>]`

use ray_intersection_predictor::prelude::*;
use std::fs::File;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "FR".to_string());
    let id = SCENE_IDS
        .iter()
        .copied()
        .find(|s| s.code().eq_ignore_ascii_case(&wanted))
        .unwrap_or(SceneId::FireplaceRoom);

    let scene = id.build_with_viewport(SceneScale::Tiny, 96, 96);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);
    let workload = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
    println!("{}: {} AO rays", id, workload.rays.len());

    // Baseline: plain any-hit traversal per ray.
    let baseline_flags: Vec<bool> = workload
        .rays
        .iter()
        .map(|r| bvh.intersect(r, TraversalKind::AnyHit).hit.is_some())
        .collect();

    // Predictor path: same rays through the §3 flow.
    let config = PredictorConfig {
        update_delay: 32,
        ..PredictorConfig::paper_default()
    };
    let mut predictor = Predictor::new(config, bvh.bounds());
    let mut predicted_flags = Vec::with_capacity(workload.rays.len());
    let mut skipped_fetches = 0i64;
    for ray in &workload.rays {
        let trace = trace_occlusion(&mut predictor, &bvh, ray);
        predicted_flags.push(trace.hit.is_some());
        if trace.outcome == RayOutcome::Verified {
            skipped_fetches += 1;
        }
    }
    assert_eq!(
        baseline_flags, predicted_flags,
        "prediction must never change visibility results"
    );
    println!(
        "visibility identical; {} rays verified ({:.1}%), {:.1}% of rays hit",
        skipped_fetches,
        predictor.stats().verified_rate() * 100.0,
        predictor.stats().hit_rate() * 100.0
    );

    let image = workload.occlusion_image(&predicted_flags);
    let path = format!("ao_{}.pgm", id.code().to_lowercase());
    image.write_pgm(BufWriter::new(File::create(&path)?))?;
    println!("wrote {path} (mean brightness {:.3})", image.mean());
    Ok(())
}
