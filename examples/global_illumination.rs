//! §6.4 in action: apply the predictor to closest-hit global-illumination
//! paths, where predicted intersections trim each ray's maximum length
//! before the authoritative traversal.
//!
//! Run with: `cargo run --release --example global_illumination`

use ray_intersection_predictor::prelude::*;

fn main() {
    let scene = SceneId::LivingRoom.build_with_viewport(SceneScale::Tiny, 48, 48);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);

    let gi = GiWorkload::generate(
        &scene,
        &bvh,
        &GiConfig {
            bounces: 3,
            seed: 7,
        },
    );
    println!(
        "GI path workload: {} segments over generations {:?}",
        gi.rays.len(),
        gi.generation_sizes
    );

    // Closest-hit rays predict the leaf itself (Go Up Level 0) — the
    // prediction only supplies a conservative t bound.
    let config = PredictorConfig {
        go_up_level: 0,
        update_delay: 32,
        ..PredictorConfig::paper_default()
    };
    let mut predictor = Predictor::new(config, bvh.bounds());
    let mut exact_matches = 0usize;
    let mut trimmed = 0usize;
    for ray in &gi.rays {
        let reference = bvh.intersect(ray, TraversalKind::ClosestHit).hit;
        let trace = trace_closest(&mut predictor, &bvh, ray);
        match (reference, trace.hit) {
            (None, None) => exact_matches += 1,
            (Some(a), Some(b)) if (a.t - b.t).abs() <= 1e-3 * (1.0 + a.t) => {
                exact_matches += 1;
            }
            (a, b) => panic!("closest-hit mismatch: reference {a:?} vs predicted {b:?}"),
        }
        if trace.outcome == RayOutcome::Verified {
            trimmed += 1;
        }
    }
    let stats = predictor.stats();
    println!(
        "all {} segments produced exact closest hits; {} rays ({:.1}%) were trimmed by a prediction",
        exact_matches,
        trimmed,
        100.0 * trimmed as f64 / gi.rays.len() as f64
    );
    println!(
        "predicted {:.1}% / verified {:.1}% (paper: the occlusion-oriented predictor still gives ~4% GI speedup)",
        stats.predicted_rate() * 100.0,
        stats.verified_rate() * 100.0
    );
}
