//! Explore the predictor design space interactively: sweep Go Up Level,
//! hash tightness and table shape on one scene and print how the Equation 1
//! terms move — a miniature of the paper's §6.1–6.2 studies.
//!
//! Run with: `cargo run --release --example predictor_tuning`

use ray_intersection_predictor::prelude::*;

fn run(config: PredictorConfig, bvh: &Bvh, rays: &[Ray]) -> String {
    let sim = FunctionalSim::new(config, SimOptions::default());
    let report = sim.run(bvh, rays);
    let eq1 = report.eq1_model();
    format!(
        "p={:.2} v={:.2} k={:.1} m={:.2} | est. skip {:.2} vs actual {:.2} nodes/ray | mem savings {:+.1}%",
        eq1.p,
        eq1.v,
        eq1.k,
        eq1.m,
        eq1.estimated_nodes_skipped(),
        report.actual_nodes_skipped_per_ray(),
        report.memory_savings() * 100.0
    )
}

fn main() {
    let scene = SceneId::CountryKitchen.build_with_viewport(SceneScale::Tiny, 64, 64);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    println!("scene: {} | {} AO rays\n", scene.id, rays.len());

    println!("Go Up Level sweep (Figure 14):");
    for gul in 0..=5 {
        let config = PredictorConfig {
            go_up_level: gul,
            ..PredictorConfig::paper_default()
        };
        println!("  level {gul}: {}", run(config, &bvh, &rays));
    }

    println!("\nHash tightness (Table 8a):");
    for (ob, db) in [(3u32, 3u32), (4, 3), (5, 3), (5, 5)] {
        let config = PredictorConfig {
            hash: HashFunction::GridSpherical {
                origin_bits: ob,
                direction_bits: db,
            },
            ..PredictorConfig::paper_default()
        };
        println!(
            "  {ob} origin / {db} direction bits: {}",
            run(config, &bvh, &rays)
        );
    }

    println!("\nTable shape (Tables 6 & 7):");
    for (entries, ways) in [(512usize, 4usize), (1024, 4), (1024, 1), (2048, 8)] {
        let config = PredictorConfig {
            entries,
            ways,
            ..PredictorConfig::paper_default()
        };
        println!(
            "  {entries} entries, {ways}-way ({} bytes): {}",
            config.table_bytes(),
            run(config, &bvh, &rays)
        );
    }

    println!("\nOracle ladder (Figure 2):");
    for oracle in [
        OracleMode::None,
        OracleMode::Lookup,
        OracleMode::UnboundedTraining,
        OracleMode::ImmediateUpdates,
    ] {
        let config = PredictorConfig::paper_default().with_oracle(oracle);
        println!(
            "  {:>9}: {}",
            format!("{oracle:?}"),
            run(config, &bvh, &rays)
        );
    }
}
