//! Quickstart: build a benchmark scene, trace ambient-occlusion rays
//! through the ray intersection predictor and print the headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use ray_intersection_predictor::prelude::*;

fn main() {
    // 1. Build a procedural analog of the Crytek Sponza atrium and its BVH.
    let scene = SceneId::CrytekSponza.build_with_viewport(SceneScale::Tiny, 64, 64);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);
    println!(
        "scene: {} ({} triangles, BVH depth {})",
        scene.id,
        bvh.triangle_count(),
        bvh.depth()
    );

    // 2. Generate the paper's AO workload: one primary closest-hit ray per
    //    pixel, then four cosine-sampled hemisphere rays per hit point with
    //    lengths of 25-40% of the scene diagonal (§5.2).
    let workload = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
    println!(
        "workload: {} occlusion rays from {} hit points",
        workload.rays.len(),
        workload.primary_hits
    );

    // 3. Functional simulation: how much traversal does the predictor skip?
    let sim = FunctionalSim::new(PredictorConfig::paper_default(), SimOptions::default());
    let report = sim.run(&bvh, &workload.rays);
    println!(
        "predictor: {:.1}% predicted, {:.1}% verified, {:.1}% fewer node fetches, {:.1}% fewer memory accesses",
        report.prediction.predicted_rate() * 100.0,
        report.prediction.verified_rate() * 100.0,
        report.node_savings() * 100.0,
        report.memory_savings() * 100.0,
    );

    // 4. Cycle-level timing: speedup over the baseline RT unit (Table 2 GPU).
    let baseline = Simulator::new(GpuConfig::baseline()).run(&bvh, &workload.rays);
    let predicted = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &workload.rays);
    println!(
        "timing: {} vs {} cycles -> {:.2}x speedup",
        baseline.cycles,
        predicted.cycles,
        predicted.speedup_over(&baseline)
    );

    // 5. Energy: the Table 4 breakdown.
    let model = EnergyModel::paper_45nm();
    let eb = model.breakdown(&baseline);
    let ep = model.breakdown(&predicted);
    println!(
        "energy: {:.1} nJ/ray baseline, {:+.1} nJ/ray with predictor",
        eb.total_nj_per_ray(),
        ep.total_nj_per_ray() - eb.total_nj_per_ray()
    );
}
