//! Watch warp repacking work: run the same AO workload through the
//! cycle-level RT unit under the three Figure 15 configurations and show
//! warp counts, DRAM bank balance and cycles.
//!
//! Run with: `cargo run --release --example warp_repacking_demo`

use ray_intersection_predictor::prelude::*;

fn describe(label: &str, report: &SimReport, baseline: &SimReport) {
    println!(
        "{label:>10}: {:>9} cycles ({:.3}x) | {:>4} warps ({} repacked) | v={:.1}% | bank balance {:.2} | mean bank wait {:.1} cyc",
        report.cycles,
        report.speedup_over(baseline),
        report.warps_executed,
        report.repacked_warps,
        report.prediction.verified_rate() * 100.0,
        report.memory.dram.bank_balance(),
        report.memory.dram.mean_bank_wait(),
    );
}

fn main() {
    let scene = SceneId::LostEmpire.build_with_viewport(SceneScale::Tiny, 96, 96);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    println!(
        "{}: {} AO rays through the Table 2 GPU\n",
        scene.id,
        rays.len()
    );

    let baseline = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
    describe("baseline", &baseline, &baseline);

    let mut default_cfg = GpuConfig::with_predictor();
    default_cfg.repack = RepackMode::Off;
    let default_run = Simulator::new(default_cfg).run(&bvh, &rays);
    describe("default", &default_run, &baseline);

    let repack = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
    describe("repack", &repack, &baseline);

    let mut repack4_cfg = GpuConfig::with_predictor();
    repack4_cfg.repack = RepackMode::WithExtraWarps(4);
    let repack4 = Simulator::new(repack4_cfg).run(&bvh, &rays);
    describe("repack 4", &repack4, &baseline);

    assert_eq!(
        baseline.hits, repack.hits,
        "repacking must not change results"
    );
    println!(
        "\nAll configurations agree on {} scene hits out of {} rays.",
        baseline.hits, baseline.completed_rays
    );
}
