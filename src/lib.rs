//! # Ray Intersection Predictor
//!
//! A full Rust reproduction of *Intersection Prediction for Accelerated
//! GPU Ray Tracing* (MICRO 2021): a hardware predictor that memoizes which
//! BVH node spatially similar occlusion rays intersected and speculatively
//! elides the interior traversal for future rays.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`math`] | `rip-math` | vectors, rays, AABBs, triangles, sampling |
//! | [`scene`] | `rip-scene` | procedural benchmark scenes, OBJ, cameras |
//! | [`bvh`] | `rip-bvh` | binned-SAH BVH, while-while traversal |
//! | [`predictor`] | `rip-core` | **the paper's contribution**: hash functions, predictor table, Go Up Level, oracles, Equation 1 |
//! | [`gpusim`] | `rip-gpusim` | cycle-level RT unit + memory hierarchy |
//! | [`energy`] | `rip-energy` | Table 4 energy model |
//! | [`render`] | `rip-render` | AO/GI workloads, images, reference model |
//!
//! # Quickstart
//!
//! ```
//! use ray_intersection_predictor::prelude::*;
//!
//! // Build a benchmark scene and its BVH.
//! let scene = SceneId::Sibenik.build_with_viewport(SceneScale::Tiny, 32, 32);
//! let tris: Vec<Triangle> = scene.mesh.triangles().collect();
//! let bvh = Bvh::build(&tris);
//!
//! // Trace an AO workload through the predictor.
//! let workload = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
//! let sim = FunctionalSim::new(PredictorConfig::paper_default(), SimOptions::default());
//! let report = sim.run(&bvh, &workload.rays);
//! println!("verified rays: {:.1}%", report.prediction.verified_rate() * 100.0);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use rip_bvh as bvh;
pub use rip_core as predictor;
pub use rip_energy as energy;
pub use rip_gpusim as gpusim;
pub use rip_math as math;
pub use rip_render as render;
pub use rip_scene as scene;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use rip_bvh::{Bvh, BvhBuilder, NodeId, Traversal, TraversalKind};
    pub use rip_core::{
        trace_closest, trace_occlusion, AdaptivePredictor, FunctionalSim, HashFunction, OracleMode,
        Prediction, Predictor, PredictorConfig, RayOutcome, SimOptions,
    };
    pub use rip_energy::EnergyModel;
    pub use rip_gpusim::{GpuConfig, RepackMode, SimReport, Simulator};
    pub use rip_math::{Aabb, Ray, Triangle, Vec3};
    pub use rip_render::{
        AnimatedScene, AoConfig, AoWorkload, GiConfig, GiWorkload, GrayImage, ShadowConfig,
        ShadowWorkload,
    };
    pub use rip_scene::{Camera, Scene, SceneId, SceneScale, TriangleMesh, SCENE_IDS};
}
