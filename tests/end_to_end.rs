//! Cross-crate integration tests: the full pipeline from procedural scene
//! through BVH, predictor, timing simulator and energy model.

use ray_intersection_predictor::prelude::*;

fn build(id: SceneId, viewport: u32) -> (Scene, Bvh) {
    let scene = id.build_with_viewport(SceneScale::Tiny, viewport, viewport);
    let tris: Vec<Triangle> = scene.mesh.triangles().collect();
    let bvh = Bvh::build(&tris);
    (scene, bvh)
}

#[test]
fn predictor_is_exact_for_every_scene() {
    // The central safety property: prediction changes performance, never
    // visibility. Checked per-ray on every benchmark scene.
    for id in SCENE_IDS {
        let (scene, bvh) = build(id, 24);
        let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
        let config = PredictorConfig {
            update_delay: 16,
            ..PredictorConfig::paper_default()
        };
        let mut predictor = Predictor::new(config, bvh.bounds());
        for ray in &rays {
            let reference = bvh.intersect(ray, TraversalKind::AnyHit).hit.is_some();
            let predicted = trace_occlusion(&mut predictor, &bvh, ray).hit.is_some();
            assert_eq!(reference, predicted, "{id}: visibility diverged");
        }
    }
}

#[test]
fn timing_sim_agrees_with_functional_hits() {
    let (scene, bvh) = build(SceneId::CrytekSponza, 32);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    let functional_hits = rays
        .iter()
        .filter(|r| bvh.intersect(r, TraversalKind::AnyHit).hit.is_some())
        .count() as u64;
    for config in [GpuConfig::baseline(), GpuConfig::with_predictor()] {
        let report = Simulator::new(config).run(&bvh, &rays);
        assert_eq!(report.completed_rays, rays.len() as u64);
        assert_eq!(report.hits, functional_hits);
    }
}

#[test]
fn dense_ao_workload_trains_the_predictor() {
    let (scene, bvh) = build(SceneId::CrytekSponza, 48);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    let sim = FunctionalSim::new(PredictorConfig::paper_default(), SimOptions::default());
    let report = sim.run(&bvh, &rays);
    assert!(
        report.prediction.predicted_rate() > 0.5,
        "p = {}",
        report.prediction.predicted_rate()
    );
    assert!(
        report.prediction.verified_rate() > 0.2,
        "v = {}",
        report.prediction.verified_rate()
    );
    assert!(
        report.node_savings() > 0.1,
        "node savings = {}",
        report.node_savings()
    );
}

#[test]
fn oracle_ladder_never_decreases_savings() {
    let (scene, bvh) = build(SceneId::FireplaceRoom, 32);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    let mut last = f64::MIN;
    for oracle in [
        OracleMode::None,
        OracleMode::Lookup,
        OracleMode::UnboundedTraining,
        OracleMode::ImmediateUpdates,
    ] {
        let sim = FunctionalSim::new(
            PredictorConfig::paper_default().with_oracle(oracle),
            SimOptions::default(),
        );
        let savings = sim.run(&bvh, &rays).memory_savings();
        assert!(
            savings >= last - 0.02,
            "{oracle:?} regressed the ladder: {savings} after {last}"
        );
        last = savings;
    }
}

#[test]
fn equation_one_tracks_measured_savings_on_suite() {
    let (scene, bvh) = build(SceneId::LivingRoom, 40);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    let sim = FunctionalSim::new(PredictorConfig::paper_default(), SimOptions::default());
    let report = sim.run(&bvh, &rays);
    let est = report.eq1_model().estimated_nodes_skipped();
    let actual = report.actual_nodes_skipped_per_ray();
    // The paper's Table 5 shows ~15% model error; allow generous slack.
    assert!(
        (est - actual).abs() <= 0.5 * actual.abs().max(1.0),
        "Equation 1 estimate {est} vs measured {actual}"
    );
}

#[test]
fn energy_model_reports_savings_when_cycles_drop() {
    let (scene, bvh) = build(SceneId::CrytekSponza, 40);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    let base = Simulator::new(GpuConfig::baseline()).run(&bvh, &rays);
    let pred = Simulator::new(GpuConfig::with_predictor()).run(&bvh, &rays);
    let model = EnergyModel::paper_45nm();
    let eb = model.breakdown(&base);
    let ep = model.breakdown(&pred);
    assert!(eb.total_nj_per_ray() > 0.0);
    if pred.cycles < base.cycles {
        assert!(
            ep.total_nj_per_ray() < eb.total_nj_per_ray(),
            "shorter execution must save energy: {} vs {}",
            ep.total_nj_per_ray(),
            eb.total_nj_per_ray()
        );
    }
}

#[test]
fn sorted_rays_reduce_predictor_benefit() {
    // Figure 12's secondary observation: Morton-sorted rays trace similar
    // rays back-to-back, before the table can be trained by them.
    let (scene, bvh) = build(SceneId::CrytekSponza, 48);
    let workload = AoWorkload::generate(&scene, &bvh, &AoConfig::default());
    let sorted = workload.sorted(&bvh);
    let sim = FunctionalSim::new(
        PredictorConfig::paper_default(),
        SimOptions {
            classify_accesses: false,
            ..SimOptions::default()
        },
    );
    let unsorted_savings = sim.run(&bvh, &workload.rays).node_savings();
    let sorted_savings = sim.run(&bvh, &sorted.rays).node_savings();
    assert!(
        sorted_savings <= unsorted_savings + 0.05,
        "sorted ({sorted_savings}) should not beat unsorted ({unsorted_savings}) materially"
    );
}

#[test]
fn obj_round_trip_preserves_traversal_results() {
    // The OBJ path exists so the original paper models can be dropped in;
    // verify geometry survives a round trip bit-exactly enough to traverse.
    let (scene, bvh) = build(SceneId::Sibenik, 16);
    let mut buffer = Vec::new();
    ray_intersection_predictor::scene::obj::write_obj(&scene.mesh, &mut buffer).unwrap();
    let reloaded = ray_intersection_predictor::scene::obj::read_obj(buffer.as_slice()).unwrap();
    assert_eq!(reloaded.triangle_count(), scene.mesh.triangle_count());
    let tris: Vec<Triangle> = reloaded.triangles().collect();
    let bvh2 = Bvh::build(&tris);
    let rays = AoWorkload::generate(&scene, &bvh, &AoConfig::default()).rays;
    for ray in rays.iter().take(500) {
        assert_eq!(
            bvh.intersect(ray, TraversalKind::AnyHit).hit.is_some(),
            bvh2.intersect(ray, TraversalKind::AnyHit).hit.is_some(),
        );
    }
}
