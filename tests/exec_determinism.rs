//! Determinism and artifact-cache guarantees of the `rip-exec` engine
//! (ISSUE: parallel output must be byte-identical to serial, and cache
//! hits must return exactly the artifact a fresh build would produce).

use rip_bench::{experiments, Context, SceneSelection};
use rip_exec::{Case, CaseCache, CaseKey, JobPool};
use rip_obs::{ClockMode, Obs};
use rip_scene::{SceneScale, SCENE_IDS};
use rip_testkit::obs::{normalize_trace, validate_trace};
use std::sync::Arc;

/// A representative slice of the schedule: a per-scene table, a config
/// sweep, and a module with skippable rows.
const PROBES: [&str; 3] = ["fig12_speedup", "fig14_go_up_level", "ext_shadow_rays"];

#[test]
fn experiment_output_is_identical_at_any_job_count() {
    for probe in PROBES {
        let (_, run) = experiments::ALL
            .iter()
            .find(|(name, _)| *name == probe)
            .expect("probe experiment exists in the schedule");
        let serial = run(&Context::with_jobs(
            SceneScale::Tiny,
            SceneSelection::Subset(2),
            1,
        ));
        let parallel = run(&Context::with_jobs(
            SceneScale::Tiny,
            SceneSelection::Subset(2),
            4,
        ));
        assert_eq!(
            serial.text, parallel.text,
            "{probe}: report text diverged between --jobs 1 and --jobs 4"
        );
        assert_eq!(
            serial.metrics, parallel.metrics,
            "{probe}: metrics diverged between --jobs 1 and --jobs 4"
        );
    }
}

/// Runs the probe experiments under an isolated, tracing-enabled
/// [`Obs`] and returns the final counter snapshot plus the normalized
/// trace (ts/dur/tid and wall-time args stripped, lines sorted).
fn traced_run(jobs: usize) -> (std::collections::BTreeMap<String, u64>, String) {
    let obs = Arc::new(Obs::new(ClockMode::Logical));
    obs.trace().enable();
    let ctx = Context::scoped(
        SceneScale::Tiny,
        SceneSelection::Subset(2),
        jobs,
        Arc::clone(&obs),
    );
    for probe in PROBES {
        let (_, run) = experiments::ALL
            .iter()
            .find(|(name, _)| *name == probe)
            .expect("probe experiment exists in the schedule");
        run(&ctx);
    }
    let jsonl = obs.export_trace_jsonl();
    validate_trace(&jsonl).expect("traced run must export schema-valid JSONL");
    let normalized = normalize_trace(&jsonl).expect("trace must normalize");
    (obs.registry().snapshot(), normalized)
}

#[test]
fn traced_counters_and_traces_are_schedule_independent() {
    let (counters_serial, trace_serial) = traced_run(1);
    let (counters_parallel, trace_parallel) = traced_run(4);

    assert!(
        counters_serial
            .get("exec.cache.build")
            .copied()
            .unwrap_or(0)
            > 0,
        "probe runs should exercise the case cache: {counters_serial:?}"
    );
    assert!(
        counters_serial.keys().any(|k| k.starts_with("gpusim.")),
        "probe runs should exercise the simulator: {counters_serial:?}"
    );
    assert_eq!(
        counters_serial, counters_parallel,
        "counter totals diverged between --jobs 1 and --jobs 4"
    );
    assert!(
        !trace_serial.is_empty(),
        "traced run should record spans and events"
    );
    assert_eq!(
        trace_serial, trace_parallel,
        "normalized traces diverged between --jobs 1 and --jobs 4"
    );
}

#[test]
fn run_all_report_order_is_fixed() {
    let ctx = Context::with_jobs(SceneScale::Tiny, SceneSelection::Subset(1), 4);
    let reports = experiments::run_all(&ctx);
    assert_eq!(reports.len(), experiments::ALL.len());
    // Reports must come back in paper order even when experiments finish
    // out of order under the shared pool.
    let first = &reports[0].id;
    assert!(
        first.contains("Table 1"),
        "first report should be Table 1, got {first}"
    );
}

#[test]
fn cache_hit_returns_bvh_identical_to_fresh_build() {
    let key = CaseKey::square(SCENE_IDS[0], SceneScale::Tiny, 64);
    let cache = CaseCache::in_memory_only();
    let first = cache.get_or_build(key);
    let hit = cache.get_or_build(key);
    assert!(
        std::sync::Arc::ptr_eq(&first, &hit),
        "second lookup must be a memory hit"
    );
    assert_eq!(cache.stats().builds, 1);
    assert_eq!(cache.stats().memory_hits, 1);

    hit.bvh.validate().expect("cached BVH must validate");
    let fresh = Case::build(key);
    assert_eq!(
        rip_bvh::serial::encode(&hit.bvh),
        rip_bvh::serial::encode(&fresh.bvh),
        "cached node buffer must equal a fresh build"
    );
}

#[test]
fn disk_artifacts_round_trip_across_cache_instances() {
    let dir = std::env::temp_dir().join(format!("rip-exec-itest-{}", std::process::id()));
    let key = CaseKey::square(SCENE_IDS[1], SceneScale::Tiny, 64);

    let writer = CaseCache::with_disk_dir(Some(dir.clone()));
    let built = writer.get_or_build(key);
    assert_eq!(writer.stats().builds, 1);

    // A second cache instance (fresh process, in effect) must load from
    // disk without rebuilding and reproduce the exact artifact.
    let reader = CaseCache::with_disk_dir(Some(dir.clone()));
    let loaded = reader.get_or_build(key);
    assert_eq!(
        reader.stats().disk_hits,
        1,
        "expected a disk hit, not a rebuild"
    );
    assert_eq!(reader.stats().builds, 0);
    loaded.bvh.validate().expect("decoded BVH must validate");
    assert_eq!(
        rip_bvh::serial::encode(&built.bvh),
        rip_bvh::serial::encode(&loaded.bvh)
    );
    assert_eq!(
        rip_scene::serial::encode(&built.scene),
        rip_scene::serial::encode(&loaded.scene)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn job_pool_preserves_input_order() {
    let pool = JobPool::new(4);
    let items: Vec<u64> = (0..64).collect();
    let doubled = pool.map(&items, |&x| x * 2);
    assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
}
