//! Smoke test: every reproduced table/figure runs end-to-end at tiny scale
//! and produces sane headline metrics.

use rip_bench::{experiments, Context, SceneSelection};
use rip_scene::SceneScale;

fn ctx() -> Context {
    Context::new(SceneScale::Tiny, SceneSelection::Subset(2))
}

#[test]
fn all_experiments_produce_reports() {
    let reports = experiments::run_all(&ctx());
    assert_eq!(
        reports.len(),
        23,
        "one report per reproduced result + extensions"
    );
    for report in &reports {
        assert!(
            !report.text.trim().is_empty(),
            "{} produced no text",
            report.id
        );
    }
}

#[test]
fn figure_12_predictor_wins_at_tiny_scale() {
    let report = experiments::fig12_speedup::run(&ctx());
    let gm = report
        .get_metric("geomean_unsorted")
        .expect("metric recorded");
    assert!(gm > 1.0, "predictor should win: geomean {gm}");
}

#[test]
fn figure_2_oracle_ladder_is_ordered() {
    let report = experiments::fig02_limit_study::run(&ctx());
    let real = report.get_metric("savings_Predictor").unwrap();
    let ot = report.get_metric("savings_OT").unwrap();
    assert!(
        ot >= real - 0.02,
        "OT ({ot}) must not trail the real predictor ({real})"
    );
    let v_real = report.get_metric("verified_Predictor").unwrap();
    let v_ol = report.get_metric("verified_OL").unwrap();
    assert!(
        v_ol >= v_real - 0.02,
        "oracle lookup must verify at least as many rays"
    );
}

#[test]
fn figure_14_verified_rate_rises_with_go_up_level() {
    let report = experiments::fig14_go_up_level::run(&ctx());
    let v0 = report.get_metric("verified_gul0").unwrap();
    let v3 = report.get_metric("verified_gul3").unwrap();
    let v5 = report.get_metric("verified_gul5").unwrap();
    assert!(
        v3 >= v0,
        "level 3 ({v3}) must verify at least level 0 ({v0})"
    );
    assert!(
        v5 >= v3 - 0.02,
        "level 5 ({v5}) should not fall below level 3 ({v3})"
    );
}

#[test]
fn figure_1_repeated_accesses_dominate() {
    let report = experiments::fig01_memory_distribution::run(&ctx());
    let frac = report.get_metric("mean_repeated_node_fraction").unwrap();
    assert!(frac > 0.5, "repeated node accesses should dominate: {frac}");
}

#[test]
fn table_5_reports_equation_terms() {
    let report = experiments::table5_eq1::run(&ctx());
    assert!(report.get_metric("v_mean").unwrap() > 0.0);
    assert!(report.get_metric("p_mean").unwrap() > 0.0);
    assert!(report.get_metric("estimated_mean").is_some());
    assert!(report.get_metric("actual_mean").is_some());
}

#[test]
fn table_1_tracks_paper_magnitudes() {
    let report = experiments::table1_scenes::run(&ctx());
    let sb = report.get_metric("tris_SB").unwrap();
    // Tiny scale divides the 75K paper budget by 256 (floor 500).
    assert!((200.0..4000.0).contains(&sb), "SB tris {sb}");
}

#[test]
fn figure_11_correlation_is_strongly_positive() {
    let report = experiments::fig11_correlation::run(&ctx());
    let r = report.get_metric("correlation").unwrap();
    assert!(r > 0.3, "sim and reference model should correlate: r = {r}");
}
