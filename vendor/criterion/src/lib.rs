//! Minimal, offline stand-in for the parts of `criterion` 0.5 this
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the criterion API its `[[bench]]` targets consume:
//! [`Criterion`], [`Criterion::benchmark_group`], group `throughput` /
//! `sample_size` / [`BenchmarkGroup::bench_with_input`] / `finish`,
//! [`BenchmarkId::new`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark warms up briefly,
//! then runs `sample_size` samples of a batch sized so one batch takes a
//! measurable slice of wall time, and reports the median per-iteration
//! time (plus element throughput when configured) on stdout. There are no
//! plots, baselines, or statistical tests — the intent is a functional,
//! dependency-free `cargo bench` that surfaces large regressions.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver. Obtained via [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Upstream parses CLI args (filters, baselines). This stand-in
    /// accepts and ignores them so `cargo bench -- <filter>` still runs.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Upstream prints a summary; nothing to do here.
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation for a group (per-sample element count).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per benchmark iteration.
    Elements(u64),
    /// Bytes processed per benchmark iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark label.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Labels a benchmark `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name and throughput annotation.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        let label = format!("{}/{}/{}", self.name, id.function, id.parameter);
        bencher.report(&label, self.throughput);
        self
    }

    /// Marks the group complete (upstream emits a summary).
    pub fn finish(self) {}
}

/// Passed to the benchmark routine; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of an
    /// auto-calibrated batch size.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + batch calibration: grow the batch until one batch
        // takes at least ~2ms (or the batch is large enough that timer
        // resolution is irrelevant anyway).
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let per_iter = median.as_secs_f64();
        let mut line = format!("{label:<48} time: {}", fmt_time(per_iter));
        match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                line.push_str(&format!(
                    "   thrpt: {:.3} Melem/s",
                    n as f64 / per_iter / 1e6
                ));
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                line.push_str(&format!(
                    "   thrpt: {:.3} MiB/s",
                    n as f64 / per_iter / (1 << 20) as f64
                ));
            }
            _ => {}
        }
        println!("{line}");
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.3} ns", seconds * 1e9)
    }
}

/// Prevents the optimizer from eliding the benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
