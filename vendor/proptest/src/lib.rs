//! Minimal, offline stand-in for the parts of `proptest` 1.x this
//! workspace's property tests use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the proptest API its tests consume: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), [`Strategy`] with
//! `prop_map`/`prop_filter`, range and tuple strategies, [`any`],
//! `prop::collection::vec`, and the `prop_assert*`/`prop_assume` macros.
//!
//! Semantics are simplified relative to upstream: cases are generated from
//! a per-test deterministic seed, rejected cases (filters, `prop_assume`)
//! are skipped and retried up to a bounded factor, and there is **no
//! shrinking** — a failing case panics with the generated values visible
//! in the assertion message. That trade keeps the tests meaningful while
//! staying dependency-free.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runner configuration (the subset of upstream's `ProptestConfig` used
/// here: the number of cases to execute per property).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; that is also affordable for every
        // property in this workspace.
        ProptestConfig { cases: 256 }
    }
}

/// A value generator. `generate` returns `None` when the draw was
/// rejected by a filter and should be retried.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn generate(&self, rng: &mut SmallRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (`whence` is a human-readable label,
    /// kept for API compatibility).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

impl<T: Clone> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> Option<T> {
        Some(rand::SampleRange::sample_from(self.clone(), rng))
    }
}

impl<T: Clone> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> Option<T> {
        Some(rand::SampleRange::sample_from(self.clone(), rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws a value from the full domain of the type.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                rand::Rng::gen::<u64>(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rand::Rng::gen(rng)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rand::Rng::gen(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rand::Rng::gen(rng)
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T` (`any::<u32>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// A strategy that always yields a clone of one value.
pub struct JustStrategy<T>(pub T);

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// `Just(v)`: a strategy yielding exactly `v`.
#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
    JustStrategy(value)
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec`).

    pub mod collection {
        //! Collection strategies.

        use crate::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut SmallRng) -> Option<Vec<S::Value>> {
                let len = rng.gen_range(self.len.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `Vec` of values from `element` with a length drawn uniformly
        /// from `len`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(!len.is_empty(), "empty length range");
            VecStrategy { element, len }
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's path string, so a
/// property replays the same cases on every run.
pub fn seed_for(test_path: &str) -> SmallRng {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts within a property body (no shrinking: behaves as `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality within a property body (behaves as `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality within a property body (behaves as `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests.
///
/// Supported grammar (the subset upstream accepts that this workspace
/// uses): an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = { $config } ; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = { $crate::ProptestConfig::default() } ; $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:tt ;) => {};
    (
        config = $config:tt ;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __executed: u32 = 0;
            let mut __attempts: u32 = 0;
            // Allow a bounded number of filter rejections per executed
            // case before giving up (upstream errors similarly).
            let __max_attempts = __config.cases.saturating_mul(16).max(64);
            while __executed < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "too many rejected cases in {} ({} executed of {})",
                    stringify!($name),
                    __executed,
                    __config.cases,
                );
                $(
                    let $arg = match $crate::Strategy::generate(&($strategy), &mut __rng) {
                        Some(v) => v,
                        None => continue,
                    };
                )+
                __executed += 1;
                // The body runs in a closure so `prop_assume!` can skip
                // the rest of a case with `return`.
                #[allow(clippy::redundant_closure_call)]
                (|| $body)();
            }
        }
        $crate::__proptest_items! { config = $config ; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate() {
        let mut rng = crate::seed_for("self_test");
        let s = (0u32..10, -1.0f32..1.0).prop_map(|(a, b)| (a, b));
        for _ in 0..100 {
            let (a, b) = Strategy::generate(&s, &mut rng).unwrap();
            assert!(a < 10);
            assert!((-1.0..1.0).contains(&b));
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = crate::seed_for("filter_test");
        let s = (0u32..10).prop_filter("even", |v| v % 2 == 0);
        let mut some = 0;
        for _ in 0..100 {
            if let Some(v) = Strategy::generate(&s, &mut rng) {
                assert_eq!(v % 2, 0);
                some += 1;
            }
        }
        assert!(some > 10, "filter passed {some} of 100");
    }

    #[test]
    fn collection_vec_lengths() {
        let mut rng = crate::seed_for("vec_test");
        let s = prop::collection::vec(0u64..5, 2..7);
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng).unwrap();
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_with_config(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn macro_runs_without_config(v in prop::collection::vec(0u32..9, 1..20)) {
            prop_assert!(!v.is_empty());
        }
    }
}
