//! Minimal, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `rand` API it actually consumes:
//!
//! * [`SeedableRng::seed_from_u64`] construction,
//! * [`rngs::SmallRng`] (implemented, like upstream `rand` 0.8 on 64-bit
//!   targets, as xoshiro256++ seeded through SplitMix64),
//! * [`Rng::gen`] for `f32`/`f64`/`bool` and the unsigned integer types,
//! * [`Rng::gen_range`] over half-open and inclusive ranges,
//! * [`Rng::gen_bool`].
//!
//! Determinism is the only contract the workspace relies on: every
//! procedural scene and workload seeds its generator explicitly, so all
//! that matters is that the stream is fixed for a given seed, of good
//! statistical quality, and identical across platforms. All three hold
//! here (xoshiro256++ is the upstream algorithm as well).

/// A random number generator core: a source of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 key expansion,
    /// matching upstream `rand`'s `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform range sampler.
///
/// The single blanket `SampleRange` impl below mirrors upstream rand's
/// structure on purpose: it lets the compiler unify an unsuffixed range
/// literal's type with the surrounding expression (e.g.
/// `rng.gen_range(0.2..1.0) * some_f32` infers `f32`), which independent
/// per-type `SampleRange` impls would not.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi - lo) as u64;
                lo + (bounded_u64(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // Treat the inclusive float range as the upstream
                // implementation does: uniform over [lo, hi] up to
                // rounding at the top end.
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Uniform integer in `[0, bound)` by widening multiply with rejection
/// (Lemire's method; unbiased).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Reject draws in the biased low tail: accept when the low word of the
    // widening multiply is at least (2^64 - bound) % bound.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (floats in `[0, 1)`, integers over the full
    /// domain, `bool` fair).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ (the same
    /// algorithm upstream `rand` 0.8 uses for `SmallRng` on 64-bit
    /// targets). Not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn from_state(mut key: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guaranteed not all-zero.
            let mut next = || {
                key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = key;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                return Self::from_state(0);
            }
            SmallRng { s }
        }

        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            Self::from_state(state)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f32..5.0);
            assert!((-2.0..5.0).contains(&f));
            let g = rng.gen_range(0.25f32..=0.40);
            assert!((0.25..=0.401).contains(&g));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable: {seen:?}");
    }

    #[test]
    fn mean_of_unit_floats_is_centered() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(17);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "{trues} trues");
        let often = (0..10_000).filter(|_| rng.gen_bool(0.9)).count();
        assert!(often > 8_500, "{often} at p=0.9");
    }
}
